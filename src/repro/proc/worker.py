"""Worker-process side of the ``proc`` backend.

One :class:`ProcWorker` runs per child process: a synchronous loop that
receives task messages over its pipe, executes them, and sends results
back.  Everything user code can do inside a task — nested ``.remote()``
calls, ``repro.get``/``wait``/``put``, actor creation and calls, the
generator effect vocabulary — is served by :class:`WorkerRuntime`, a
proxy implementing the backend surface via requests to the driver's
per-worker service thread.

The worker shares the execution-side semantics of the other backends
through the core modules: :func:`~repro.core.actors.resolve_actor_callable`
maps actor tasks to callables with identical error text,
:func:`~repro.core.effect_driver.run_effect_loop_sync` drives generator
bodies, and failures are captured as
:class:`~repro.core.worker.ErrorValue`\\ s exactly like a thread or a
simulated worker would.  Large arguments are cached in a per-worker
:class:`~repro.objectstore.store.LocalObjectStore` (the same LRU
byte-store used on every node of the simulated cluster), pinned while the
task runs.

In ``dispatch_mode="bottom_up"`` the worker additionally owns the
bottom tier of the scheduling plane (:mod:`repro.sched_plane`): a
:class:`~repro.sched_plane.queues.LocalTaskQueue` it is the sole
executor of.  A nested ``.remote()`` whose dependencies are already
resident here (argument cache, own shared-memory descriptors) builds
its spec *locally* — the worker allocates task and object ids from its
own collision-free namespace — enqueues it to itself, and tells the
driver with a one-way ``SUBMIT_LOCAL`` notice: **zero driver
round-trips** on the submission path.  The worker drains this queue
between driver tasks, answers ``STEAL_REQUEST``\\ s by granting the
tail of the queue (ownership makes the grant race-free: what it gives
away it provably never runs), and honors ``CANCEL_NOTICE`` tombstones
before dispatching each local task.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Optional, Sequence

from repro.core.actors import (
    CREATION_METHOD,
    ActorRegistry,
    call_from_effect,
    create_from_effect,
    register_instance,
    resolve_actor_callable,
)
from repro.core.effect_driver import EffectHandler, run_effect_loop_sync
from repro.core.object_ref import ObjectRef
from repro.core.protocol import normalize_get_refs, unwrap_loaded, validate_wait_args
from repro.core.task import TaskSpec, _UNSET, build_task_spec, resolve_task_options
from repro.core.worker import (
    ErrorValue,
    error_value_from,
    propagate_error,
    split_result_values,
)
from repro.errors import ReproError
from repro.objectstore.store import LocalObjectStore
from repro.obs import SpanRecorder
from repro.proc import messages as msg
from repro.proc.messages import ShmDescriptor, SlotRef
from repro.proc.transport import ensure_transport
from repro.scheduling.policies import SpilloverPolicy
from repro.sched_plane.queues import LocalTaskQueue
from repro.utils.ids import IDGenerator, NodeID, ObjectID

#: Fast-path backpressure: the most locally-born tasks whose lineage
#: registration (PLACED ack) may be outstanding before new nested
#: submissions spill to the driver instead.  Bounds the work that only
#: the submitting task's own replay could rebuild after a crash.
MAX_UNACKED_LOCAL = 4096
from repro.utils.serialization import (
    DEFAULT_INLINE_THRESHOLD,
    deserialize,
    deserialize_frame,
    deserialize_portable,
    serialize,
    serialize_buffers,
    serialize_portable,
    should_inline,
    write_frame,
)


class _ProcEffectHandler(EffectHandler):
    """Bind the effect vocabulary to driver round-trips (blocking, real)."""

    def __init__(self, worker: "ProcWorker") -> None:
        self.worker = worker

    def on_compute(self, item) -> None:
        time.sleep(item.duration)

    def on_get(self, item) -> Any:
        return self.worker.proxy.get(item.refs)

    def on_wait(self, item) -> tuple:
        return self.worker.proxy.wait(
            list(item.refs), num_returns=item.num_returns, timeout=item.timeout
        )

    def on_put(self, item) -> ObjectRef:
        return self.worker.proxy.put(item.value)

    def on_cancel(self, item) -> bool:
        return self.worker.proxy.cancel(item.ref, recursive=item.recursive)

    def on_actor_create(self, item):
        return create_from_effect(self.worker.proxy, item)

    def on_actor_call(self, item) -> ObjectRef:
        return call_from_effect(self.worker.proxy, item)


class WorkerRuntime:
    """The backend surface visible to user code inside a worker process.

    Mirrors the driver-side :class:`~repro.proc.runtime.ProcRuntime`
    method-for-method, but every operation is a request over the pipe.
    Installed as the process's current runtime so ``repro.get``,
    ``fn.remote`` and actor handles work unchanged inside task bodies.
    """

    def __init__(self, worker: "ProcWorker") -> None:
        self._worker = worker
        self.closed = False
        self.ids = worker.ids

    # Function registration is local: the function itself ships by value
    # with every submission, so the driver never needs this id to resolve
    # anything — it only keys RemoteFunction's per-runtime registration.
    def register_function(self, function, name: str):
        return self.ids.function_id()

    def submit_task(
        self,
        function,
        function_id,
        function_name: str,
        args: tuple = (),
        kwargs: dict = None,
        options: Any = None,
        resources=None,
        duration: Any = _UNSET,
        placement_hint: Any = _UNSET,
        max_reconstructions=None,
    ) -> Any:
        options = resolve_task_options(
            options, resources=resources, duration=duration,
            placement_hint=placement_hint,
            max_reconstructions=max_reconstructions,
        )
        result = self._worker.try_submit_local(
            function, function_name, tuple(args), dict(kwargs or {}), options
        )
        if result is not None:
            return result
        payload = {
            "function_bytes": self._worker.function_bytes(function),
            "function_name": function_name,
            "call_bytes": serialize_portable((tuple(args), dict(kwargs or {}))),
            # ``duration`` may be a closure (a sim-only concept anyway):
            # strip it so the payload stays plain-picklable on the pipe.
            "options": options.merged(duration=None),
            # Trace context rides along so the spill path keeps the
            # nested submission inside its driver-born request's tree.
            "root_task_id": self._worker._cur_root,
            "parent_task_id": self._worker._cur_task,
        }
        return self._worker.rpc(msg.SUBMIT, payload)

    def cancel(self, ref: ObjectRef, recursive: bool = False) -> bool:
        return self._worker.rpc(msg.CANCEL, ref, recursive)

    def get_actor(self, name: str):
        return self._worker.rpc(msg.GET_ACTOR, name)

    def get(self, refs: Any, timeout: Optional[float] = None) -> Any:
        ref_list, single = normalize_get_refs(refs)
        blobs = self._worker.rpc(
            msg.GET, [ref.object_id for ref in ref_list], timeout
        )
        values = [unwrap_loaded(self._worker.materialize(blob)) for blob in blobs]
        return values[0] if single else values

    def wait(
        self,
        refs: Sequence[ObjectRef],
        num_returns: int = 1,
        timeout: Optional[float] = None,
    ) -> tuple:
        ref_list = list(refs)
        validate_wait_args(ref_list, num_returns)
        return self._worker.rpc(msg.WAIT, ref_list, num_returns, timeout)

    def put(self, value: Any) -> ObjectRef:
        worker = self._worker
        if worker.shm_enabled:
            serialized = serialize_buffers(value)
            if not should_inline(serialized.total_bytes, worker.inline_threshold):
                granted = worker._ship_value(None, serialized)
                if granted is not None:
                    ref = worker.rpc(msg.SHM_SEAL, granted.object_id)
                    worker.note_shm(granted)
                    return ref
            data = serialized.in_band_bytes()
            if data is not None:
                ref = worker.rpc(msg.PUT, data)
                worker.remember_bytes(ref.object_id, data)
                return ref
        data = serialize(value)
        ref = worker.rpc(msg.PUT, data)
        worker.remember_bytes(ref.object_id, data)
        return ref

    def create_actor(
        self, actor_class, class_name, args, kwargs, resources,
        placement_hint=None, name=None,
    ):
        payload = {
            "class_bytes": serialize_portable(actor_class),
            "class_name": class_name,
            "call_bytes": serialize_portable((tuple(args), dict(kwargs))),
            "resources": resources,
            "placement_hint": placement_hint,
            "name": name,
        }
        return self._worker.rpc(msg.CREATE_ACTOR, payload)

    def call_actor(
        self, actor_id, method_name: str, args, kwargs, num_returns: int = 1
    ) -> ObjectRef:
        payload = {
            "actor_id": actor_id,
            "method": method_name,
            "call_bytes": serialize_portable((tuple(args), dict(kwargs))),
            "num_returns": num_returns,
        }
        return self._worker.rpc(msg.CALL_ACTOR, payload)

    def sleep(self, duration: float) -> None:
        time.sleep(duration)

    @property
    def now(self) -> float:
        return time.monotonic()

    def stats(self) -> dict:
        return {}

    def shutdown(self) -> None:  # the driver owns the lifecycle
        pass


class ProcWorker:
    """One child process: executes tasks and hosts pinned actor state."""

    def __init__(
        self,
        conn,
        index: int,
        seed: int,
        cache_capacity: int,
        shm_enabled: bool = False,
        inline_threshold: Optional[int] = None,
        dispatch_mode: str = "driver",
        spawn_token: int = 0,
        spillover_policy: Optional[SpilloverPolicy] = None,
        tracing: bool = False,
    ) -> None:
        # Spawn ships a raw pipe Connection (the only picklable channel);
        # everything below talks the Transport surface.
        self.conn = ensure_transport(conn)
        self.index = index
        self.node_id = NodeID.from_seed(f"repro-proc/{seed}/worker/{index}")
        #: Collision-free id namespace for locally-born specs: the spawn
        #: token distinguishes a replacement worker in the same slot from
        #: its dead predecessor, so replayed lifetimes never reuse ids.
        self.ids = IDGenerator(
            namespace=f"repro-proc-worker/{seed}/{index}/{spawn_token}"
        )
        #: LRU byte-cache of fetched (non-inline) arguments; immutable
        #: objects make invalidation a non-problem.
        self.cache = LocalObjectStore(self.node_id, capacity=cache_capacity)
        #: Actors whose state lives in this process.
        self.actors = ActorRegistry()
        self.proxy = WorkerRuntime(self)
        self._effect_handler = _ProcEffectHandler(self)
        self.tasks_executed = 0
        #: The bottom tier of the scheduling plane (bottom_up mode): the
        #: run queue this process is the sole executor of.
        self.dispatch_mode = dispatch_mode
        # The default threshold is deliberately high: on this plane the
        # primary rebalancer is work stealing (idle workers pull), so
        # spillover only guards against a worker hoarding an enormous
        # fan-out the pool provably cannot drain behind it.
        self.spillover = spillover_policy or SpilloverPolicy(
            mode="hybrid", queue_threshold=512.0
        )
        self.local_queue = LocalTaskQueue()
        #: SUBMIT_LOCAL notices not yet PLACED-acked by the driver: the
        #: window of locally-born tasks whose lineage registration is
        #: still in flight.  The fast path declines (spills) once the
        #: window hits MAX_UNACKED_LOCAL, bounding how much work could
        #: need rebuilding from the submitting task's own replay.
        self.unacked_local = 0
        #: Fast-path notices buffered for the next pipe touch: batching
        #: turns a K-task fan-out's control traffic into one send.  The
        #: flush-before-every-outbound-message discipline (see
        #: :meth:`_flush_notices`) keeps the causal order the mirror
        #: depends on.
        self._pending_notices: list = []
        #: Per-callable serialized-code cache for nested submissions.
        self._fn_bytes: dict = {}
        #: Shared-memory descriptors this process has seen (attached
        #: arguments, sealed puts/results).  Sealed objects are pinned
        #: driver-side, so a remembered descriptor stays valid for the
        #: runtime's lifetime; used for residency checks and to embed
        #: descriptors in locally-built payloads.
        self._known_shm: dict = {}
        #: The shared-memory data plane (lazy segment attach; refcount
        #: cell column = worker index + 1, 0 being the driver's).
        self.shm_enabled = shm_enabled
        self.inline_threshold = (
            inline_threshold if inline_threshold is not None
            else DEFAULT_INLINE_THRESHOLD
        )
        self.shm = None
        if shm_enabled:
            try:
                from repro.shm.store import ShmClient

                self.shm = ShmClient(client_index=index + 1)
            except Exception:  # pragma: no cover - shm-less host
                self.shm_enabled = False
        #: Stack of per-task lists of (segment, slot) refcount holds; one
        #: frame per (reentrant) execute() invocation, released in its
        #: ``finally`` so zero-copy views stay valid for the task's
        #: whole lifetime.
        self._shm_holds: list[list] = []
        #: The tracing plane's per-process buffer (no-op unless
        #: ``tracing=True`` was threaded down from init).  Flushed as a
        #: trailing element on DONE/RESULT/IDLE and, when large, as a
        #: dedicated SPANS frame at the next rpc.
        self.obs = SpanRecorder(enabled=tracing)
        #: Trace context of the innermost executing task (saved/restored
        #: around reentrant execute() calls): nested submissions inherit
        #: the current root so a span tree reconstructs per driver-born
        #: request, worker-born fast-path tasks included.
        self._cur_task: Any = None
        self._cur_root: Any = None

    # ------------------------------------------------------------------
    # Shared-memory plumbing
    # ------------------------------------------------------------------

    def _hold_descriptor(self, descriptor: ShmDescriptor) -> None:
        """Take this worker's refcount on a descriptor's slot, scoped to
        the innermost executing task (released in execute()'s finally)."""
        self.shm.hold(descriptor.segment, descriptor.slot)
        if self._shm_holds:
            self._shm_holds[-1].append((descriptor.segment, descriptor.slot))
        else:  # outside any task (cannot happen in practice): release now
            self.shm.release(descriptor.segment, descriptor.slot)

    def materialize(self, blob: Any) -> Any:
        """Turn a pipe blob — bytes or ShmDescriptor — into a value.

        Descriptors deserialize zero-copy: reconstructed buffers (numpy
        arrays) alias the shared segment, valid at least for the
        enclosing task.  If the segment cannot be mapped here (exotic
        namespaces, a client that failed to construct), the driver still
        has the object — fall back to a one-off byte FETCH."""
        if isinstance(blob, ShmDescriptor):
            if self.shm is not None:
                try:
                    self._hold_descriptor(blob)
                    value = deserialize_frame(self.shm.read(blob.segment, blob.slot))
                    self.note_shm(blob)
                    if self.obs.enabled:
                        self.obs.record(
                            "shm_fetch",
                            object_id=str(blob.object_id),
                            size=blob.size,
                        )
                    return value
                except OSError:
                    pass
            blob = self.rpc(msg.FETCH, blob.object_id)
        return deserialize(blob)

    def note_shm(self, descriptor: ShmDescriptor) -> None:
        """Remember a descriptor this process can re-attach (residency)."""
        if self.shm is not None:
            self._known_shm[descriptor.object_id] = descriptor

    def remember_bytes(self, object_id: ObjectID, data: bytes) -> None:
        """Opportunistically cache bytes known to equal the driver-stored
        object (puts, inline args) so later nested submissions can treat
        the object as locally resident."""
        try:
            self.cache.put(object_id, data)
        except ReproError:
            pass  # larger than the cache: not resident, just unlucky

    def function_bytes(self, function) -> bytes:
        """Serialize a function once per worker lifetime (the worker
        analogue of the driver's per-function-id code cache): code
        shipping, not pickling, must dominate a fan-out's first submit
        only.  Keyed by the callable itself — remote functions are
        long-lived module objects, so the strong reference is bounded by
        the program's distinct remote functions."""
        try:
            cached = self._fn_bytes.get(function)
        except TypeError:  # unhashable callable: serialize every time
            return serialize_portable(function)
        if cached is None:
            cached = serialize_portable(function)
            self._fn_bytes[function] = cached
        return cached

    def _ship_value(self, object_id, serialized) -> Any:
        """Write a split value into shm and return its descriptor, or
        ``None`` when the data plane cannot take it (disabled, budget
        full, attach failure) — the caller then ships bytes."""
        if not self.shm_enabled:
            return None
        try:
            granted = self.rpc(msg.SHM_CREATE, object_id, serialized.frame_bytes)
        except ReproError:
            return None
        if granted is None:
            return None
        try:
            write_frame(
                self.shm.write_view(granted.segment, granted.slot), serialized
            )
            return granted
        except (ReproError, OSError):
            # An unmappable segment: hand the grant back (else its pinned
            # allocation would bleed shm budget forever) and take the
            # pipe.  (Pipe failures resurface on the next send/recv and
            # follow the normal crash path.)
            try:
                self.rpc(msg.SHM_ABORT, granted.object_id)
            except ReproError:
                pass
            return None

    # ------------------------------------------------------------------
    # Driver round-trips
    # ------------------------------------------------------------------

    def rpc(self, tag: str, *parts: Any) -> Any:
        """One request/reply exchange with the driver.

        While we are parked waiting for the reply (a blocking ``get`` or
        ``wait``), the driver may interleave *task* messages for actors
        pinned to this process: the task the current one is blocked on may
        only be runnable here.  Those run reentrantly on this stack —
        the process was idle-blocked anyway — and the exchange then
        resumes.  This is the proc analogue of blocked sim workers
        releasing their resource slots (R3)."""
        self._flush_notices()
        if self.obs.should_flush():
            self._flush_spans()
        self.conn.send((tag,) + parts)
        while True:
            reply = self.conn.recv()
            if reply[0] == msg.TASK:
                payload = reply[1]
                data, failed = self.execute(payload)
                if self.dispatch_mode == "bottom_up":
                    self._flush_notices()
                    self._send_done(payload["task_id"], data, failed)
                else:
                    self._send_result(data, failed)
                continue
            if self._handle_control(reply):
                continue
            if reply[0] == msg.ERR:
                raise reply[1]
            return reply[1]

    # ------------------------------------------------------------------
    # Tracing-aware sends
    # ------------------------------------------------------------------
    # The recorder piggybacks on messages the worker sends anyway: DONE /
    # RESULT / IDLE grow an optional trailing obs blob (receivers index
    # from the front, so tracing-off wire shapes are byte-identical).
    # With tracing off, drain() returns None and these collapse to the
    # plain sends.

    def _send_done(self, task_id, data, failed) -> None:
        blob = self.obs.drain()
        if blob is not None:
            self.conn.send((msg.DONE, task_id, data, failed, blob))
        else:
            self.conn.send((msg.DONE, task_id, data, failed))

    def _send_result(self, data, failed) -> None:
        blob = self.obs.drain()
        if blob is not None:
            self.conn.send((msg.RESULT, data, failed, blob))
        else:
            self.conn.send((msg.RESULT, data, failed))

    def _send_idle(self) -> None:
        blob = self.obs.drain()
        if blob is not None:
            self.conn.send((msg.IDLE, blob))
        else:
            self.conn.send((msg.IDLE,))

    def _flush_spans(self) -> None:
        """Ship buffered spans on a dedicated one-way SPANS frame."""
        blob = self.obs.drain()
        if blob is not None:
            self.conn.send((msg.SPANS, blob))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        from repro.api import runtime_context

        # Nested .remote()/get/put calls inside task bodies resolve the
        # current runtime; in this process that is the driver proxy.
        runtime_context._current_runtime = self.proxy
        try:
            if self.dispatch_mode == "bottom_up":
                self._run_bottom_up()
                return
            while True:
                message = self.conn.recv()
                tag = message[0]
                if tag == msg.SHUTDOWN:
                    self._flush_spans()  # final flush: nothing else will
                    return
                if tag == msg.TASK:
                    data, failed = self.execute(message[1])
                    self._send_result(data, failed)
        except (EOFError, OSError, KeyboardInterrupt):
            return  # driver went away (shutdown or crash): just exit
        finally:
            runtime_context._current_runtime = None
            if self.shm is not None:
                self.shm.detach_all()
            try:
                self.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Bottom-up mode: local queue, steal grants, cancellation tombstones
    # ------------------------------------------------------------------

    def _run_bottom_up(self) -> None:
        """The session loop of bottom-up mode.

        One driver ``TASK`` opens a session; the worker then alternates
        between the task it was handed and its own local queue (which
        that task probably grew via the fast path), reporting each
        completion with a one-way ``DONE``.  ``IDLE`` closes the session
        and parks the worker on the pipe for the next one.  Driver
        control messages are drained at every dispatch boundary, so a
        cancellation or steal landing between two local tasks takes
        effect before the next one runs.
        """
        # At spawn the driver already counts this worker idle — the
        # first session opens with a TASK, not with an IDLE announcement
        # (an unsolicited IDLE would read as a phantom session close).
        if not self._idle_until_task():
            return
        while True:
            self._drain_control()
            entry = self._next_local()
            if entry is not None:
                task_id, payload = entry
                data, failed = self.execute(payload)
                self._flush_notices()
                self._send_done(task_id, data, failed)
                continue
            self._flush_notices()  # nothing runnable, but notices may wait
            self._send_idle()
            if not self._idle_until_task():
                return

    def _next_local(self) -> Optional[tuple]:
        """Pop the next runnable local task.  Cancellation needs no
        check here: a CANCEL_NOTICE removes the task from the queue the
        moment it is handled (and _drain_control runs before every
        pop), so a cancelled task is provably never popped."""
        return self.local_queue.pop_head()

    def _idle_until_task(self) -> bool:
        """Park on the pipe between sessions; False means shutdown."""
        while True:
            message = self.conn.recv()
            tag = message[0]
            if tag == msg.SHUTDOWN:
                self._flush_spans()  # final flush: nothing else will
                return False
            if tag == msg.TASK:
                payload = message[1]
                data, failed = self.execute(payload)
                self._flush_notices()
                self._send_done(payload["task_id"], data, failed)
                return True
            if not self._handle_control(message):
                raise RuntimeError(f"unexpected driver message {tag!r} while idle")

    def _drain_control(self) -> None:
        """Process every buffered one-way driver message (non-blocking)."""
        while self.conn.poll():
            message = self.conn.recv()
            if not self._handle_control(message):
                raise RuntimeError(
                    f"unexpected driver message {message[0]!r} between tasks"
                )

    def _handle_control(self, message: tuple) -> bool:
        """Handle a one-way driver message; False if it was not one."""
        tag = message[0]
        if tag == msg.STEAL_REQUEST:
            granted = self.local_queue.steal_tail(message[1])
            # The grant is authoritative: this process is the queue's
            # only executor, so a task id it sends away can never also
            # run here.  Payloads are dropped — the driver re-homes the
            # tasks from its mirror, which the flush below guarantees
            # already knows every granted id.
            self._flush_notices()
            self.conn.send((msg.STEAL_GRANT, [task_id for task_id, _ in granted]))
            return True
        if tag == msg.CANCEL_NOTICE:
            # The worker-side dispatch-time drop: gone from the queue,
            # the task can never be popped, so it never executes.
            self.local_queue.remove(message[1])
            return True
        if tag == msg.PLACED:
            self.unacked_local = max(0, self.unacked_local - len(message[1]))
            return True
        return False

    def try_submit_local(
        self, function, function_name: str, args: tuple, kwargs: dict, options
    ) -> Any:
        """The bottom-up fast path: keep a nested submission on this
        worker when every dependency is already resident here.

        Returns the refs (``public_result`` shape) on success, or None
        when the task must spill to the driver instead — unresolved or
        non-resident dependencies, actor ordering, a placement hint for
        another node, resources one worker slot cannot satisfy, or a
        local backlog past the spillover threshold (all but the first
        decided by the shared :class:`SpilloverPolicy`).
        """
        if self.dispatch_mode != "bottom_up":
            return None
        if self.unacked_local + len(self._pending_notices) >= MAX_UNACKED_LOCAL:
            return None  # lineage-ack backpressure: spill instead
        refs = [
            value
            for value in list(args) + list(kwargs.values())
            if isinstance(value, ObjectRef)
        ]
        if not all(self._locally_resident(ref.object_id) for ref in refs):
            return None
        spec = build_task_spec(
            self.ids,
            function=function,
            function_id=self.ids.function_id(),
            function_name=function_name,
            args=args,
            kwargs=kwargs,
            options=options.merged(duration=None),
            submitted_from=self.node_id,
            root_task_id=self._cur_root,
            parent_task_id=self._cur_task,
        )
        if self.spillover.should_spill(
            spec,
            node_cpus=1,
            node_gpus=0,
            backlog=len(self.local_queue),
            this_node=self.node_id,
        ):
            return None
        payload = self._build_local_payload(spec, function)
        # The notice is one-way and *buffered* — this is the zero
        # round-trip path: a fan-out's notices coalesce into a single
        # send at the next pipe touch, and the driver's (batched)
        # PLACED ack arrives asynchronously, carrying the lineage
        # guarantee.  _flush_notices() before every other outbound
        # message is what keeps the mirror causally ahead of any DONE
        # or STEAL_GRANT that could mention the task.
        self._pending_notices.append(
            {
                "payload": payload,
                "function_name": spec.function_name,
                "resources": spec.resources,
                "max_reconstructions": spec.max_reconstructions,
                "submitted_from": self.node_id,
                "root_task_id": spec.root_task_id,
                "parent_task_id": spec.parent_task_id,
            }
        )
        self.local_queue.push(spec.task_id, payload)
        if self.obs.enabled:
            # Worker-born fast-path tasks get their submitted/placed
            # spans here — the driver never sees the submission itself,
            # only the (batched, async) notice.
            self.obs.record(
                "task_submitted",
                task_id=str(spec.task_id),
                function=spec.function_name,
                root_task_id=str(spec.root_task_id),
                parent_task_id=str(spec.parent_task_id),
                worker_born=True,
            )
            self.obs.record(
                "task_placed",
                task_id=str(spec.task_id),
                function=spec.function_name,
                local=True,
            )
        return spec.public_result()

    def _flush_notices(self) -> None:
        """Ship buffered SUBMIT_LOCAL notices (one message for all).

        Called before *every* other outbound pipe message — DONE, IDLE,
        STEAL_GRANT, and any rpc request — so by pipe FIFO the driver
        registers a locally-born task strictly before it can see the
        task's completion, a grant giving it away, or any value/request
        in which its ref could escape this process."""
        if self._pending_notices:
            batch, self._pending_notices = self._pending_notices, []
            self.conn.send((msg.SUBMIT_LOCAL, batch))
            self.unacked_local += len(batch)

    def _locally_resident(self, object_id: ObjectID) -> bool:
        """Whether this process can materialize the object without the
        driver: cached bytes or an attachable shm descriptor."""
        return self.cache.contains(object_id) or object_id in self._known_shm

    def _build_local_payload(self, spec: TaskSpec, function) -> dict:
        """The worker-side twin of the driver's ``_build_payload``: same
        wire shape, but ref slots resolve from local residency (known
        shm descriptors embedded; cached bytes left for dispatch-time
        resolution, with a FETCH fallback if the cache evicts them)."""

        def slot(value: Any) -> Any:
            if not isinstance(value, ObjectRef):
                return value
            return SlotRef(
                value.object_id, shm=self._known_shm.get(value.object_id)
            )

        return {
            "task_id": spec.task_id,
            "function_id": spec.function_id,
            "function_name": spec.function_name,
            "return_object_id": spec.return_object_id,
            "return_object_ids": spec.all_return_ids(),
            "num_returns": spec.num_returns,
            "call_bytes": serialize_portable(
                (
                    tuple(slot(value) for value in spec.args),
                    {key: slot(value) for key, value in spec.kwargs.items()},
                )
            ),
            "inline": {},
            "function_bytes": self.function_bytes(function),
            "root_task_id": spec.root_task_id,
            "parent_task_id": spec.parent_task_id,
        }

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------

    def execute(self, payload: dict) -> tuple:
        """Run one task message to completion.

        Returns ``([result_bytes, ...], failed)``: one serialized blob
        per return slot (an :class:`ErrorValue` when anything went wrong)
        plus the flag the driver needs for actor bookkeeping — shipped
        alongside so the driver never has to deserialize the payload to
        learn it."""
        spec = TaskSpec(
            task_id=payload["task_id"],
            function_id=payload["function_id"],
            function_name=payload["function_name"],
            return_object_id=payload["return_object_id"],
            return_object_ids=tuple(payload.get("return_object_ids", ())),
            num_returns=payload.get("num_returns", 1),
            actor_id=payload.get("actor_id"),
            actor_method=payload.get("method"),
            root_task_id=payload.get("root_task_id"),
            parent_task_id=payload.get("parent_task_id"),
        )
        root_id = (
            spec.root_task_id if spec.root_task_id is not None else spec.task_id
        )
        t_start = time.monotonic()
        if self.obs.enabled:
            self.obs.record(
                "task_started",
                timestamp=t_start,
                task_id=str(spec.task_id),
                function=spec.function_name,
                root_task_id=str(root_id),
                parent_task_id=(
                    str(spec.parent_task_id)
                    if spec.parent_task_id is not None
                    else None
                ),
            )
        pinned: list = []
        holds: list = []
        self._shm_holds.append(holds)
        # Reentrant execute() (an actor task injected while this task is
        # blocked in rpc) must not inherit the outer task's context.
        prev_ctx = (self._cur_task, self._cur_root)
        self._cur_task, self._cur_root = spec.task_id, root_id
        try:
            try:
                args, kwargs, upstream = self._resolve_call(payload, pinned)
            except ReproError as exc:
                # An argument could not be materialized (e.g. lost in the
                # driver store): the task must still produce a result.
                return self._finish_obs(
                    spec, t_start, self._pack(spec, error_value_from(spec, exc))
                )
            if upstream is not None:
                result = propagate_error(upstream, spec)
            elif spec.actor_id is not None:
                result = self._execute_actor(spec, payload, args, kwargs)
            else:
                result = self._execute_function(spec, payload, args, kwargs)
            self.tasks_executed += 1
            return self._finish_obs(spec, t_start, self._pack(spec, result))
        finally:
            self._cur_task, self._cur_root = prev_ctx
            for object_id in pinned:
                self.cache.unpin(object_id)
            self._shm_holds.pop()
            for segment, slot in holds:
                self.shm.release(segment, slot)

    def _finish_obs(self, spec: TaskSpec, t_start: float, packed: tuple) -> tuple:
        if self.obs.enabled:
            end = time.monotonic()
            self.obs.record(
                "task_finished",
                timestamp=end,
                task_id=str(spec.task_id),
                function=spec.function_name,
                duration=end - t_start,
                failed=packed[1],
            )
        return packed

    def _pack(self, spec: TaskSpec, result: Any) -> tuple:
        """Serialize a result into ``([blob, ...], failed)``: one entry
        per return slot (``num_returns``), each either bytes (small
        values, errors, shm-less fallback) or a :class:`ShmDescriptor`
        the worker has already written through its own mapping — the
        payload then never crosses the pipe.  Serialization wraps every
        pickling failure (PicklingError, recursion, weird user
        __reduce__) in TypeError, so this cannot let an unpicklable
        return crash the worker."""
        values = split_result_values(spec, result)
        blobs = []
        failed = False
        for value, object_id in zip(values, spec.all_return_ids()):
            try:
                blob = self._pack_one(value, object_id)
            except TypeError as exc:
                value = error_value_from(spec, exc)
                blob = serialize(value)
            blobs.append(blob)
            failed = failed or isinstance(value, ErrorValue)
        return blobs, failed

    def _pack_one(self, value: Any, object_id) -> Any:
        """One return slot: a ShmDescriptor for large values when the
        data plane accepts them, else serialized bytes."""
        if self.shm_enabled and not isinstance(value, ErrorValue):
            serialized = serialize_buffers(value)
            if not should_inline(serialized.total_bytes, self.inline_threshold):
                granted = self._ship_value(object_id, serialized)
                if granted is not None:
                    # NOT remembered in _known_shm: the driver seals this
                    # grant only on DONE receipt, and aborts it instead if
                    # the task was cancelled mid-run — a remembered
                    # descriptor could alias a reused slot.
                    return granted
            # Small (or shm refused): the plain pipe path — reusing the
            # in-band stream unless buffers went out-of-band, in which
            # case the value must be re-pickled joined.
            return serialized.in_band_bytes() or serialize(value)
        return serialize(value)

    def _resolve_call(self, payload: dict, pinned: list):
        """Materialize argument slots into values (inline, cache, or fetch).

        Returns ``(args, kwargs, upstream_error)`` exactly like the other
        backends' workers: an upstream :class:`ErrorValue` skips execution
        and propagates as this task's result.
        """
        args_template, kwargs_template = deserialize_portable(payload["call_bytes"])
        inline: dict = payload["inline"]
        upstream: Optional[ErrorValue] = None

        def resolve(value: Any) -> Any:
            nonlocal upstream
            if not isinstance(value, SlotRef):
                return value
            if value.shm is not None and self.shm_enabled:
                # Zero-copy path: the descriptor came embedded in the
                # SlotRef; materialize() reads the arena directly (with
                # a byte FETCH fallback for unmappable segments).  No
                # byte cache — attaching a cached segment costs nothing
                # and the payload is never copied in the first place.
                resolved = self.materialize(value.shm)
            else:
                resolved = self._resolve_piped(value.object_id, inline, pinned)
            if isinstance(resolved, ErrorValue) and upstream is None:
                upstream = resolved
            return resolved

        args = tuple(resolve(value) for value in args_template)
        kwargs = {key: resolve(value) for key, value in kwargs_template.items()}
        return args, kwargs, upstream

    def _resolve_piped(self, object_id, inline: dict, pinned: list) -> Any:
        """The byte path: inline table, local LRU cache, or FETCH."""
        data = inline.get(object_id)
        if data is None:
            data = self.cache.get(object_id)
            if data is None:
                data = self.rpc(msg.FETCH, object_id)
                try:
                    self.cache.put(object_id, data)
                except ReproError:
                    pass  # larger than the whole cache: run uncached
            if self.cache.contains(object_id):
                self.cache.pin(object_id)
                pinned.append(object_id)
        elif not self.cache.contains(object_id):
            # Inline args are tiny; caching them makes the object count
            # as locally resident for the bottom-up fast path.
            self.remember_bytes(object_id, data)
        return deserialize(data)

    def _execute_function(self, spec: TaskSpec, payload: dict, args, kwargs) -> Any:
        try:
            function = deserialize_portable(payload["function_bytes"])
        except BaseException as exc:  # noqa: BLE001 - code-shipping boundary
            return error_value_from(spec, exc)
        return self._run_callable(spec, function, args, kwargs)

    def _execute_actor(self, spec: TaskSpec, payload: dict, args, kwargs) -> Any:
        if (
            spec.actor_method == CREATION_METHOD
            and self.actors.get(spec.actor_id) is None
        ):
            self.actors.create(
                spec.actor_id, payload["class_name"], payload["resources"],
                self.node_id,
            )
            try:
                spec.function = deserialize_portable(payload["function_bytes"])
            except BaseException as exc:  # noqa: BLE001 - code-shipping boundary
                return error_value_from(spec, exc)
        function, record, error = resolve_actor_callable(self.actors, spec)
        if error is not None:
            return error
        if spec.actor_method == CREATION_METHOD:
            try:
                instance = function(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - user code boundary
                return error_value_from(spec, exc)
            register_instance(record, instance, self.node_id)
            return None
        result = self._run_callable(spec, function, args, kwargs)
        if not isinstance(result, ErrorValue):
            record.methods_executed += 1
        return result

    def _run_callable(self, spec: TaskSpec, function, args, kwargs) -> Any:
        """Run a task body (plain or generator-of-effects); capture errors."""
        try:
            if inspect.isgeneratorfunction(function):
                return run_effect_loop_sync(
                    spec, function(*args, **kwargs), self._effect_handler
                )
            return function(*args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - user code boundary
            return error_value_from(spec, exc)


def worker_main(
    conn,
    index: int,
    seed: int,
    cache_capacity: int,
    shm_enabled: bool = False,
    inline_threshold: Optional[int] = None,
    dispatch_mode: str = "driver",
    spawn_token: int = 0,
    spillover_policy: Optional[SpilloverPolicy] = None,
    tracing: bool = False,
) -> None:
    """Entry point of a worker child process (importable for spawn)."""
    ProcWorker(
        conn,
        index=index,
        seed=seed,
        cache_capacity=cache_capacity,
        shm_enabled=shm_enabled,
        inline_threshold=inline_threshold,
        dispatch_mode=dispatch_mode,
        spawn_token=spawn_token,
        spillover_policy=spillover_policy,
        tracing=tracing,
    ).run()
