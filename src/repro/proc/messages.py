"""Wire protocol between the proc driver and its worker processes.

Each worker owns one duplex pipe.  Traffic is strictly alternating from
the worker's point of view: the driver sends a task; while executing it
the worker may issue any number of *requests* (fetch an argument, submit
a nested task, block in ``get``/``wait``, ``put`` a value, create or call
an actor), each answered by exactly one reply from the driver's per-worker
service thread; the exchange ends with the worker's ``RESULT`` message.
Because the worker is single-threaded, requests never interleave — the
protocol needs no sequence numbers.

Messages are tuples ``(tag, *payload)``.  Everything crossing the pipe is
picklable by construction: user *code* is pre-serialized with
:func:`~repro.utils.serialization.serialize_portable`, user *values* with
plain pickle, and framework objects (ids, refs, resource requests,
:class:`~repro.core.worker.ErrorValue`) are simple dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.ids import ObjectID

# -- driver -> worker ---------------------------------------------------
TASK = "task"          # (TASK, payload_dict): execute one task
SHUTDOWN = "shutdown"  # (SHUTDOWN,): exit the worker loop

# -- worker -> driver (task lifecycle) ----------------------------------
RESULT = "result"      # (RESULT, [result_bytes, ...], failed): the task
                       # finished; one blob per return slot (num_returns)

# -- worker -> driver (requests while a task runs) ----------------------
FETCH = "fetch"                # (FETCH, object_id) -> (OK, bytes)
SUBMIT = "submit"              # (SUBMIT, payload) -> (OK, ObjectRef | tuple)
GET = "get"                    # (GET, [object_id], timeout) -> (OK, [bytes])
WAIT = "wait"                  # (WAIT, [refs], num_returns, timeout) -> (OK, (ready, pending))
PUT = "put"                    # (PUT, bytes) -> (OK, ObjectRef)
CANCEL = "cancel"              # (CANCEL, ref, recursive) -> (OK, bool)
CREATE_ACTOR = "create_actor"  # (CREATE_ACTOR, payload) -> (OK, ActorHandle)
CALL_ACTOR = "call_actor"      # (CALL_ACTOR, payload) -> (OK, ObjectRef)
GET_ACTOR = "get_actor"        # (GET_ACTOR, name) -> (OK, ActorHandle)

# -- driver -> worker (replies) -----------------------------------------
OK = "ok"    # (OK, value)
ERR = "err"  # (ERR, exception): re-raised inside the worker at the call site


@dataclass(frozen=True)
class SlotRef:
    """Placeholder for a task argument that was an :class:`ObjectRef`.

    The driver substitutes one of these for every top-level ref argument
    when building a task message; small objects ride along serialized in
    the message's ``inline`` table, large ones stay in the driver store
    and the worker fetches them on demand into its local cache (the
    inline-vs-store threshold of :mod:`repro.utils.serialization`).
    """

    object_id: ObjectID
