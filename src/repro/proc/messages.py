"""Wire protocol between the proc driver and its worker processes.

Each worker owns one duplex pipe.  In ``dispatch_mode="driver"`` traffic
is strictly alternating from the worker's point of view: the driver
sends a task; while executing it the worker may issue any number of
*requests* (fetch an argument, submit a nested task, block in ``get``/
``wait``, ``put`` a value, create or call an actor), each answered by
exactly one reply from the driver's per-worker service thread; the
exchange ends with the worker's ``RESULT`` message.  Because the worker
is single-threaded, requests never interleave — the protocol needs no
sequence numbers.

``dispatch_mode="bottom_up"`` (the two-level scheduling plane,
:mod:`repro.sched_plane`) adds **one-way messages** in both directions
on top of the same request/reply core.  The worker runs *sessions*: one
driver ``TASK`` starts a session, during which the worker may execute
any number of tasks from its own local queue, reporting each with a
one-way ``DONE`` and announcing new locally-born work with one-way
``SUBMIT_LOCAL`` notices; ``IDLE`` ends the session.  The driver's
one-way messages (``STEAL_REQUEST``, ``CANCEL_NOTICE``, ``PLACED``) may
arrive at the worker interleaved with request replies; the worker
processes them at every pipe touch-point — before dispatching each
local task, inside its reply-wait loop, and while idle.  Pipe FIFO
ordering is the protocol's only synchronization: a ``SUBMIT_LOCAL``
always precedes any ``DONE`` or ``STEAL_GRANT`` that mentions its task,
so the driver's mirror of each worker queue is maintained in causal
order.

Messages are tuples ``(tag, *payload)``.  Everything crossing the pipe is
picklable by construction: user *code* is pre-serialized with
:func:`~repro.utils.serialization.serialize_portable`, user *values* with
plain pickle, and framework objects (ids, refs, resource requests,
:class:`~repro.core.worker.ErrorValue`) are simple dataclasses.

Large user values do not cross the pipe at all when the shared-memory
data plane is on: FETCH/GET replies and RESULT blobs carry a
:class:`ShmDescriptor` (segment name + slot + size) instead of bytes,
and the payload moves through :mod:`repro.shm` zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.ids import ObjectID

# -- driver -> worker ---------------------------------------------------
TASK = "task"          # (TASK, payload_dict): execute one task
SHUTDOWN = "shutdown"  # (SHUTDOWN,): exit the worker loop

# -- worker -> driver (task lifecycle) ----------------------------------
RESULT = "result"      # (RESULT, [blob, ...], failed): the task finished;
                       # one entry per return slot (num_returns), each
                       # either result bytes or a ShmDescriptor the worker
                       # already filled (the driver seals it on receipt)

# -- worker -> driver (requests while a task runs) ----------------------
FETCH = "fetch"                # (FETCH, object_id) -> (OK, bytes)
SUBMIT = "submit"              # (SUBMIT, payload) -> (OK, ObjectRef | tuple)
GET = "get"                    # (GET, [object_id], timeout) -> (OK, [bytes | ShmDescriptor])
WAIT = "wait"                  # (WAIT, [refs], num_returns, timeout) -> (OK, (ready, pending))
PUT = "put"                    # (PUT, bytes) -> (OK, ObjectRef)
CANCEL = "cancel"              # (CANCEL, ref, recursive) -> (OK, bool)
CREATE_ACTOR = "create_actor"  # (CREATE_ACTOR, payload) -> (OK, ActorHandle)
CALL_ACTOR = "call_actor"      # (CALL_ACTOR, payload) -> (OK, ObjectRef)
GET_ACTOR = "get_actor"        # (GET_ACTOR, name) -> (OK, ActorHandle)

# -- worker -> driver (the shared-memory data plane) --------------------
# Metadata-only variants of FETCH/PUT/RESULT: large objects cross the
# pipe as ~100-byte ShmDescriptors; only small ones ship as bytes.
# Argument descriptors ship embedded in SlotRef (no round trip);
# SHM_ATTACH is the explicit metadata refetch for everything else.
SHM_ATTACH = "shm_attach"  # (SHM_ATTACH, object_id) -> (OK, ShmDescriptor | bytes)
                           # descriptor when shm-resident; bytes fallback
SHM_CREATE = "shm_create"  # (SHM_CREATE, object_id | None, nbytes)
                           #   -> (OK, ShmDescriptor | None): reserve an
                           # unsealed allocation the worker fills through
                           # its own mapping (None: budget full, take the
                           # pipe); object_id=None allocates a fresh id
SHM_SEAL = "shm_seal"      # (SHM_SEAL, object_id) -> (OK, ObjectRef):
                           # publish a worker-filled allocation (put path;
                           # result blobs seal implicitly on RESULT)
SHM_ABORT = "shm_abort"    # (SHM_ABORT, object_id) -> (OK, None): return
                           # a granted-but-unwritable allocation to the
                           # arena (the worker is falling back to bytes)

# -- the bottom-up scheduling plane (dispatch_mode="bottom_up") ---------
# One-way messages; no tag below ever gets a reply.

# worker -> driver:
SUBMIT_LOCAL = "submit_local"  # (SUBMIT_LOCAL, [notice, ...]): nested
                               # tasks were enqueued on the worker's own
                               # local queue with zero round-trips.  The
                               # worker batches notices and flushes the
                               # batch before any other outbound message,
                               # so the driver registers lineage/mirror
                               # state causally first; it acks the batch
                               # with one PLACED
DONE = "done"          # (DONE, task_id, [blob, ...], failed): one task
                       # finished (bottom-up RESULT: sessions run many
                       # tasks, so the id rides along)
IDLE = "idle"          # (IDLE,): local queue drained; session over — the
                       # worker now blocks awaiting the next TASK
STEAL_GRANT = "steal_grant"  # (STEAL_GRANT, [task_id, ...]): the worker
                             # (sole owner of its queue) gives away the
                             # tail of its local queue; the driver
                             # re-homes the tasks from its mirror.  May
                             # be empty (nothing left to give).

# -- the tracing plane (init(..., tracing=True)) ------------------------
# Span records normally piggyback on messages the worker already sends:
# DONE, RESULT, and IDLE each grow one OPTIONAL trailing element — an
# "obs blob" (send_monotonic, [(t, kind, payload), ...], dropped_total)
# appended only when the worker's SpanRecorder has something to flush.
# Receivers index those messages positionally from the front, so the
# trailing element is invisible to tracing-unaware paths (including the
# dist agent's blob rewrite, which preserves trailing elements).  A
# buffer that grows large mid-session (or the final flush at SHUTDOWN)
# rides this dedicated one-way frame instead:
SPANS = "spans"  # (SPANS, obs_blob): worker -> driver, never replied to

# driver -> worker:
STEAL_REQUEST = "steal_request"  # (STEAL_REQUEST, max_count): an idle
                                 # worker wants work; answer with a
                                 # STEAL_GRANT of up to max_count tasks
CANCEL_NOTICE = "cancel_notice"  # (CANCEL_NOTICE, task_id): the task was
                                 # cancelled; drop it from the local
                                 # queue — it must never execute
PLACED = "placed"      # (PLACED, [task_id, ...]): the placement ack —
                       # the driver has registered a SUBMIT_LOCAL batch
                       # for lineage (crash replay covers those tasks
                       # from here on)

# -- driver -> worker (replies) -----------------------------------------
OK = "ok"    # (OK, value)
ERR = "err"  # (ERR, exception): re-raised inside the worker at the call site


@dataclass(frozen=True)
class SlotRef:
    """Placeholder for a task argument that was an :class:`ObjectRef`.

    The driver substitutes one of these for every top-level ref argument
    when building a task message; small objects ride along serialized in
    the message's ``inline`` table, large ones stay in the driver store
    and the worker fetches them on demand into its local cache (the
    inline-vs-store threshold of :mod:`repro.utils.serialization`).
    Shared-memory-resident objects ship their :class:`ShmDescriptor`
    *embedded* in ``shm`` — the worker attaches and reads zero-copy with
    no extra driver round trip (descriptors stay valid for the object's
    lifetime: stored objects are pinned).
    """

    object_id: ObjectID
    shm: "ShmDescriptor | None" = None


@dataclass(frozen=True)
class ShmDescriptor:
    """Where a large object's payload lives in shared memory.

    This is what crosses the pipe in place of the payload: the receiver
    attaches ``segment`` lazily (cached per segment), takes its refcount
    cell for ``slot``, and reads ``size`` framed bytes zero-copy.  Sent
    in FETCH/GET replies, RESULT blobs, and SHM_CREATE grants.
    """

    object_id: ObjectID
    segment: str
    slot: int
    size: int
