"""Driver-side runtime of the ``proc`` backend: real processes, real cores.

Architecture (one instance = one pool):

* ``num_workers`` child processes, each started with ``multiprocessing``'s
  **spawn** method and connected by one duplex pipe.  Spawn (not fork)
  keeps children free of inherited locks/threads and mirrors how real
  cluster workers boot from nothing.
* One **service thread** per worker on the driver side.  It pulls runnable
  tasks (from the shared queue, or the worker's pinned queue for actor
  tasks), ships them over the pipe, and then *serves* the worker's
  requests — argument fetches, nested submissions, blocking ``get``/
  ``wait``, ``put``, actor operations — until the result message arrives.
  Service threads mostly sleep in ``recv``; user compute happens in the
  children, outside the GIL, which is what makes this the first backend
  where CPU-bound work actually scales with workers.
* The shared core from the other backends does the semantics:
  :class:`~repro.core.dependencies.DependencyTracker` gates readiness,
  :mod:`repro.core.protocol` validates and unwraps, the actor-table
  helpers in :mod:`repro.core.actors` chain ordered method delivery, and
  results/arguments live as bytes in a
  :class:`~repro.objectstore.store.LocalObjectStore` (results pinned —
  they are the only replica).
* **Two data planes.**  Small objects (≤ ``inline_threshold``) ride the
  pipes as bytes, exactly as above.  Large ones take the zero-copy
  shared-memory plane (:mod:`repro.shm`, capability-gated by
  ``shm_capacity`` and host support): payloads are written once into a
  sealed shm arena — by the driver on ``put``, by the *worker itself*
  for large results (``SHM_CREATE`` grant, then a descriptor in
  ``RESULT``) — and every subsequent hop (argument attach, driver get,
  broadcast) moves only a descriptor while readers reconstruct views
  aliasing the arena.  The coordinator's reaper reclaims refcounts held
  by crashed workers, and shutdown unlinks every segment.
* **Crash recovery**: a dead worker process is detected by its service
  thread (EOF on the pipe).  Stateless in-flight tasks are replayed from
  their spec — lineage replay, up to ``max_reconstructions`` — while
  actor tasks surface :class:`~repro.errors.ActorLostError`, mirroring
  the sim backend's node-death semantics; a replacement worker is spawned
  either way.  ``worker_crash_policy="fail"`` turns replay off and
  surfaces :class:`~repro.errors.WorkerCrashedError` instead.
* **Two dispatch modes** (``dispatch_mode`` init option).  ``"driver"``
  is the fully centralized loop described above: every submission —
  including nested ``.remote()`` calls born on workers — funnels through
  the driver.  ``"bottom_up"`` (default) is the paper's hybrid two-level
  scheduler realized on real processes (:mod:`repro.sched_plane`): each
  worker owns a local task queue it feeds with a zero-round-trip nested
  submission fast path (the driver learns via one-way ``SUBMIT_LOCAL``
  notices and mirrors every queue for lineage), while the driver is the
  *global tier* — it places driver-born and spilled work with a
  locality-aware :class:`~repro.scheduling.policies.PlacementPolicy`
  (preferring the worker that already holds the largest resident
  argument bytes), brokers idle-worker work stealing
  (:class:`~repro.scheduling.policies.StealPolicy`; the victim's grant
  is authoritative, so a stolen task provably runs exactly once), and
  re-homes queued or mid-steal tasks when their worker crashes.  Both
  modes keep every observable — parity workloads, cancellation,
  ``num_returns``, named actors, fault tolerance — identical.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.cluster.spec import ClusterSpec
from repro.core import lifecycle
from repro.core.actors import (
    CREATION_METHOD,
    ActorHandle,
    ActorRegistry,
    REMOTE_INSTANCE,
    actor_lost_error_value,
    build_call_spec,
    build_creation_spec,
    chain_submission,
    get_actor_handle,
    handle_for,
    register_instance,
)
from repro.core.completion import CompletionPump, serve_stats
from repro.core.dependencies import DependencyTracker
from repro.core.lifecycle import LifecycleIndex, cancelled_error_value
from repro.core.object_ref import ObjectRef
from repro.core.protocol import (
    check_cluster_feasible,
    normalize_get_refs,
    partition_by_ready,
    unwrap_loaded,
    unwrap_value,
    validate_wait_args,
)
from repro.core.task import (
    ResourceRequest,
    TaskSpec,
    _UNSET,
    build_task_spec,
    resolve_task_options,
)
from repro.core.worker import ErrorValue, error_value_from
from repro.errors import (
    BackendError,
    GetTimeoutError,
    ObjectLostError,
    ReproError,
)
from repro.gcs import ControlStore, plan_recovery
from repro.objectstore.store import LocalObjectStore
from repro.obs import SpanCollector
from repro.proc import messages as msg
from repro.proc.messages import ShmDescriptor, SlotRef
from repro.proc.transport import PipeTransport
from repro.proc.worker import worker_main
from repro.scheduling.policies import PlacementPolicy, SpilloverPolicy, StealPolicy
from repro.sched_plane import (
    LocalTaskQueue,
    ResidencyTracker,
    SchedCounters,
    WorkerCandidate,
    plan_placement,
)
from repro.shm.coordinator import ShmCoordinator
from repro.shm.segment import shm_available, usable_shm_budget
from repro.utils.ids import ActorID, FunctionID, IDGenerator, NodeID, ObjectID
from repro.utils.serialization import (
    ByteAccountant,
    DEFAULT_INLINE_THRESHOLD,
    deserialize_frame,
    deserialize_portable,
    serialize,
    serialize_buffers,
    serialize_portable,
    should_inline,
    write_frame,
)

#: Valid values of the ``worker_crash_policy`` init option.
CRASH_POLICIES = ("replace", "fail")

#: Valid values of the ``dispatch_mode`` init option.
DISPATCH_MODES = ("bottom_up", "driver")

#: How long an idle service thread sleeps between steal-opportunity
#: re-checks, and how often a driver thread serving a blocked worker
#: polls that worker's pipe for steal grants.  Wire steals have no
#: condition-variable edge to wake on, so these bound steal latency —
#: but only while a steal is actually outstanding.
_STEAL_POLL_INTERVAL = 0.02

#: Condition-wait backstops used when *no* wire steal is in flight:
#: submissions, arrivals, grants, and shutdown all ``notify_all`` the
#: runtime cond, so an idle/blocked thread needs only a safety-net
#: timeout, not a poll clock.  Replacing the 20 ms busy-poll with these
#: cuts idle wakeups from ~50/s to ~1-4/s per thread — measurable p99
#: noise at high QPS.
_IDLE_WAIT_BACKSTOP = 1.0
_BLOCKED_WAIT_BACKSTOP = 0.25

#: Default byte budget of the shared-memory data plane (``shm_capacity``
#: init option; 0 disables it).  Backed by lazily-committed pages: the
#: budget reserves address space, not resident memory.
DEFAULT_SHM_CAPACITY = 256 * 1024**2

#: Exception types that survive a pickle round-trip over the worker pipe
#: (their constructors accept the single message arg pickle replays).
_PIPE_SAFE_ERRORS = (
    BackendError,
    GetTimeoutError,
    ObjectLostError,
    TypeError,
    ValueError,
)


def _pipe_safe_error(tag: str, exc: BaseException) -> Exception:
    """An exception instance that is safe to send to a worker.

    Framework/validation errors pass through unchanged (their types
    unpickle cleanly); anything else — including exceptions raised by
    user payloads mid-deserialization — is wrapped in a
    :class:`BackendError` carrying its repr, because an arbitrary
    exception type may not unpickle in the child and would kill it."""
    if type(exc) in _PIPE_SAFE_ERRORS:
        return exc
    return BackendError(f"worker request {tag!r} failed: {exc!r}")


@dataclass
class _WorkerHandle:
    """Driver-side view of one worker process slot."""

    index: int
    node_id: NodeID
    conn: Any = None
    process: Any = None
    thread: Optional[threading.Thread] = None
    #: Actor tasks pinned to this worker (its actors' constructors and
    #: method calls); drained before the shared queue.
    pinned: deque = field(default_factory=deque)
    #: Stack of specs executing in the child: the task it was handed plus
    #: any pinned actor tasks running reentrantly while it blocks.
    inflight: list = field(default_factory=list)
    #: Bottom-up mode: stateless tasks the driver tier placed here
    #: (locality-aware), shipped when the worker next idles.
    placed: deque = field(default_factory=deque)
    #: Bottom-up mode: the driver's mirror of the worker's own local
    #: queue, built from SUBMIT_LOCAL notices in pipe order — the state
    #: that makes stolen and crashed local tasks recoverable.
    mirror: LocalTaskQueue = field(default_factory=LocalTaskQueue)
    #: Serializes driver->worker sends: replies from the service thread
    #: interleave with steal requests and cancel notices sent by *other*
    #: threads on the same pipe.
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    #: One-way control messages parked when the pipe was congested;
    #: flushed (in order, ahead of the next message) by the service
    #: thread's next lock-free send.
    outbox: deque = field(default_factory=deque)
    #: Bottom-up session state: True between shipping a TASK and the
    #: worker's IDLE.  Only busy workers are steal victims.
    busy: bool = False
    #: An un-answered STEAL_REQUEST is outstanding for this victim.
    steal_outstanding: bool = False
    alive: bool = True
    tasks_done: int = 0
    actors_bound: int = 0


class ProcRuntime:
    """Multiprocess implementation of the backend protocol."""

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        seed: int = 0,
        num_workers: Optional[int] = None,
        worker_crash_policy: str = "replace",
        inline_threshold: int = DEFAULT_INLINE_THRESHOLD,
        worker_cache_bytes: int = 64 * 1024**2,
        shm_capacity: int = DEFAULT_SHM_CAPACITY,
        dispatch_mode: str = "bottom_up",
        placement_policy: Optional[PlacementPolicy] = None,
        spillover_policy: Optional[SpilloverPolicy] = None,
        steal_policy: Optional[StealPolicy] = None,
        control_shards: int = 8,
        control_store: Optional[ControlStore] = None,
        recover: bool = False,
        tracing: bool = False,
    ) -> None:
        self.cluster = cluster or ClusterSpec.uniform(num_nodes=1, num_cpus=4)
        if dispatch_mode not in DISPATCH_MODES:
            raise BackendError(
                f"invalid init option dispatch_mode={dispatch_mode!r} for "
                f"backend 'proc'; valid values: {list(DISPATCH_MODES)}"
            )
        if num_workers is None:
            num_workers = self.cluster.total_cpus
        if not isinstance(num_workers, int) or num_workers < 1:
            raise BackendError(
                f"invalid init option num_workers={num_workers!r} for backend "
                "'proc'; must be a positive integer"
            )
        if worker_crash_policy not in CRASH_POLICIES:
            raise BackendError(
                f"invalid init option worker_crash_policy="
                f"{worker_crash_policy!r} for backend 'proc'; valid values: "
                f"{list(CRASH_POLICIES)}"
            )
        if inline_threshold < 0 or worker_cache_bytes <= 0:
            raise BackendError(
                "invalid init option for backend 'proc': inline_threshold "
                "must be >= 0 and worker_cache_bytes > 0"
            )
        if not isinstance(shm_capacity, int) or shm_capacity < 0:
            raise BackendError(
                f"invalid init option shm_capacity={shm_capacity!r} for "
                "backend 'proc'; must be a non-negative integer (0 disables "
                "the shared-memory data plane)"
            )
        #: The control plane (the paper's GCS): lineage, object directory,
        #: actor registry, scheduler-visible state — hash-sharded behind
        #: striped locks instead of hanging off the driver lock.  A store
        #: passed in from outside outlives this runtime (driver HA).
        if control_store is not None:
            self._control = control_store
            self._owns_control = False
        else:
            if not isinstance(control_shards, int) or control_shards < 1:
                raise BackendError(
                    f"invalid init option control_shards={control_shards!r} "
                    "for backend 'proc'; must be a positive integer"
                )
            if recover:
                raise BackendError(
                    "recover=True requires control_store= (the store that "
                    "outlived the failed driver)"
                )
            self._control = ControlStore(num_shards=control_shards)
            self._owns_control = True
        self._recover_requested = recover
        #: Generation salt: a recovered driver must never mint an id the
        #: dead one already handed out (same seed ⇒ same id stream).
        self._generation = self._control.register_generation()
        self.seed = seed
        namespace = f"repro-proc/{seed}"
        if self._generation > 1:
            namespace = f"{namespace}/gen{self._generation}"
        self.ids = IDGenerator(namespace=namespace)
        self.closed = False
        self._crash_policy = worker_crash_policy
        self._inline_threshold = inline_threshold
        self._worker_cache_bytes = worker_cache_bytes
        #: The scheduling plane (see repro.sched_plane): dispatch mode,
        #: the driver tier's placement/steal policies, the worker tier's
        #: spillover policy (shipped to every worker at spawn), residency
        #: for locality scoring, and the stats()["sched"] counters.
        self.dispatch_mode = dispatch_mode
        self._placement_policy = placement_policy or PlacementPolicy()
        self._spillover_policy = spillover_policy
        self._steal_policy = steal_policy or StealPolicy()
        self._residency = ResidencyTracker()
        self._sched = SchedCounters()
        #: The tracing plane (repro.obs): driver-local spans plus every
        #: worker's flushed buffers, merged onto one wall-clock timeline
        #: the R7 tools consume through the ``event_log`` property.
        self.tracing = bool(tracing)
        self._obs = SpanCollector(enabled=self.tracing)
        #: Worker-born task payloads by task id (from SUBMIT_LOCAL
        #: notices): what a thief executes and what crash replay reships.
        self._payloads: dict[Any, dict] = {}
        self._spawn_count = 0

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        #: Event-driven completion notifications (repro.serve): watchers
        #: registered under the lock, callbacks dispatched outside it.
        self._completions = CompletionPump("repro-proc-completions")
        self._serve_pools: list = []

        #: Driver object store: the single home of every produced object,
        #: bytes-first, shared with the workers through fetch/inline.
        self.head_node_id = self.ids.node_id()
        self._store = LocalObjectStore(
            self.head_node_id,
            capacity=sum(n.object_store_capacity for n in self.cluster.nodes),
        )
        #: The zero-copy data plane: large objects live in shared-memory
        #: arenas and cross the pipe as descriptors.  Capability-gated —
        #: a host without POSIX shm (or ``shm_capacity=0``) falls back
        #: to the pipe path transparently.
        self._shm: Optional[ShmCoordinator] = None
        if shm_capacity > 0 and shm_available():
            # Clamp to what the host's shm filesystem can actually back
            # (Docker defaults /dev/shm to 64 MB; overrunning it is a
            # SIGBUS, not an exception).  Too small ⇒ pipe-only.
            shm_capacity = usable_shm_budget(shm_capacity)
        if shm_capacity > 0 and shm_available():
            self._shm = ShmCoordinator(
                self.head_node_id,
                capacity=shm_capacity,
                num_workers=num_workers,
                seed=seed,
            )
        self._deps = DependencyTracker()
        self._functions: dict[FunctionID, Callable] = {}
        self.actors = ActorRegistry()
        self._lifecycle = LifecycleIndex()

        #: Stateless runnable tasks, drained by whichever worker idles first.
        self._queue: deque = deque()
        self._workers: list[_WorkerHandle] = []
        self._by_node: dict[NodeID, _WorkerHandle] = {}
        self._fn_cache: dict[FunctionID, bytes] = {}
        self._replays: dict[Any, int] = {}

        self._tasks_executed = 0
        self._workers_crashed = 0
        self._lineage_replays = 0
        self._acct_inline = ByteAccountant()
        self._acct_stored = ByteAccountant()
        self._acct_fetched = ByteAccountant()
        self._acct_results = ByteAccountant()
        #: The data-plane ledger: zero_copy_bytes/shm_hits count objects
        #: served as descriptors, pipe_fallbacks the large objects that
        #: crossed the pipe anyway.
        self._acct_shm = ByteAccountant()

        self._mp = multiprocessing.get_context("spawn")
        with self._cond:
            for index in range(num_workers):
                self._workers.append(None)  # type: ignore[arg-type]
                self._spawn_worker(index)
        self.node_ids = [self.head_node_id]
        if self._recover_requested:
            self._recover_from_control()

    # ------------------------------------------------------------------
    # Backend protocol: registration and submission
    # ------------------------------------------------------------------

    def register_function(self, function: Callable, name: str) -> FunctionID:
        function_id = self.ids.function_id()
        with self._cond:
            self._functions[function_id] = function
        return function_id

    def submit_task(
        self,
        function: Callable,
        function_id: FunctionID,
        function_name: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        options: Any = None,
        resources: Optional[ResourceRequest] = None,
        duration: Any = _UNSET,        # modeled durations are a sim concept
        placement_hint: Any = _UNSET,
        max_reconstructions: Optional[int] = None,
        root_task_id: Any = None,
        parent_task_id: Any = None,
    ) -> Any:
        self._check_open()
        options = resolve_task_options(
            options, resources=resources, duration=duration,
            placement_hint=placement_hint,
            max_reconstructions=max_reconstructions,
        )
        check_cluster_feasible(self.cluster, options.resources, function_name)
        with self._cond:
            spec = build_task_spec(
                self.ids,
                function=function,
                function_id=function_id,
                function_name=function_name,
                args=args,
                kwargs=kwargs or {},
                options=options,
                submitted_from=self.head_node_id,
                root_task_id=root_task_id,
                parent_task_id=parent_task_id,
            )
            self._submit_spec(spec)
            return spec.public_result()

    def _submit_spec(self, spec: TaskSpec) -> ObjectRef:
        """Gate on unproduced dependencies, else enqueue (lock held).

        The control write is the write-ahead lineage record: synchronous,
        and strictly before the task can reach any worker, so a crash at
        any later point finds the spec in the task table and can replay.
        """
        self._control.task_put(spec.task_id, spec, node=self.head_node_id)
        if self._obs.enabled:
            self._obs.record(
                "task_submitted",
                task_id=str(spec.task_id),
                function=spec.function_name,
                root_task_id=str(spec.root_task_id or spec.task_id),
                parent_task_id=(
                    str(spec.parent_task_id)
                    if spec.parent_task_id is not None
                    else None
                ),
                worker_born=False,
            )
        self._lifecycle.register(spec)
        missing = {
            dep for dep in spec.dependencies() if not self._has_object(dep)
        }
        if missing:
            self._deps.add(spec, missing)
        else:
            self._enqueue(spec)
        self._cond.notify_all()
        return spec.result_ref()

    def _enqueue(self, spec: TaskSpec) -> None:
        """Route a runnable spec to its queue (lock held)."""
        if self._lifecycle.is_cancelled(spec.task_id):
            # Dispatch-time drop: the marker already owns its slots (and
            # a worker-born payload mirrored for this task is dead too).
            self._payloads.pop(spec.task_id, None)
            return
        if spec.actor_id is not None:
            record = self.actors.get(spec.actor_id)
            home = self._by_node.get(record.node_id) if record is not None else None
            if record is not None and not record.dead and home is not None and home.alive:
                home.pinned.append(spec)
                self._obs_placed(spec, home)
                return
            # Dead/unknown actor: any service thread may resolve it to an
            # error through the pre-dispatch check.
        elif self.dispatch_mode == "bottom_up":
            self._place_bottom_up(spec)
            return
        self._queue.append(spec)
        self._obs_placed(spec, None)

    def _obs_placed(
        self, spec: TaskSpec, home: Optional[_WorkerHandle]
    ) -> None:
        """One driver-tier placement span (lock held); ``home=None`` means
        the global spillover queue, drained by whichever worker idles."""
        if self._obs.enabled:
            self._obs.record(
                "task_placed",
                task_id=str(spec.task_id),
                function=spec.function_name,
                worker=None if home is None else f"worker-{home.index}",
            )

    def _place_bottom_up(self, spec: TaskSpec) -> None:
        """The driver tier's placement decision (lock held): score every
        live worker through the shared :class:`PlacementPolicy` — idle
        workers have estimated capacity, and residency supplies the
        locality bytes — or fall back to the global spillover queue,
        drained by whichever worker idles first."""
        candidates = []
        dependencies = None
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            if dependencies is None:
                dependencies = spec.dependencies()
            candidates.append(
                WorkerCandidate(
                    node_id=worker.node_id,
                    est_cpus=0 if (worker.busy or worker.inflight) else 1,
                    est_gpus=0,
                    queue_length=(
                        len(worker.placed) + len(worker.mirror) + len(worker.pinned)
                    ),
                    locality_bytes=self._residency.locality_bytes(
                        worker.index,
                        dependencies,
                        self._placement_policy.max_locality_lookups,
                    ),
                )
            )
        chosen = plan_placement(
            spec, candidates, self._placement_policy, self._sched
        )
        home = self._by_node.get(chosen) if chosen is not None else None
        if home is None or not home.alive:
            self._queue.append(spec)
            self._obs_placed(spec, None)
            return
        home.placed.append(spec)
        self._obs_placed(spec, home)

    # ------------------------------------------------------------------
    # Actor protocol
    # ------------------------------------------------------------------

    def create_actor(
        self,
        actor_class: type,
        class_name: str,
        args: tuple,
        kwargs: dict,
        resources: ResourceRequest,
        placement_hint: Optional[NodeID] = None,
        name: Optional[str] = None,
    ) -> ActorHandle:
        """Create a process-pinned actor; returns its handle immediately.

        The constructor runs on the chosen worker process and the live
        instance stays there; every method call follows it (ordered by the
        dataflow chain, like every other backend).  ``name`` registers the
        actor for :meth:`get_actor` lookup (collisions with a live holder
        raise).
        """
        self._check_open()
        check_cluster_feasible(
            self.cluster, resources, f"{class_name}.{CREATION_METHOD}"
        )
        with self._cond:
            actor_id = self.ids.actor_id()
            spec = build_creation_spec(
                self.ids, actor_id, actor_class, class_name, args, kwargs,
                resources, self.head_node_id, placement_hint=placement_hint,
            )
            home = self._choose_worker_for_actor(placement_hint)
            spec.placement_hint = home.node_id
            record = self.actors.create(
                actor_id, class_name, resources, home.node_id, name=name
            )
            self._control.actor_register(
                actor_id,
                spec={"class_name": class_name, "resources": resources},
                name=name,
                node=home.node_id,
            )
            home.actors_bound += 1
            chain_submission(record, spec)
            handle = handle_for(record, actor_class)
            record.handle = handle
            self._submit_spec(spec)
        return handle

    def get_actor(self, name: str) -> ActorHandle:
        """Look up a live named actor's handle (shared semantics)."""
        self._check_open()
        with self._cond:
            return get_actor_handle(self.actors, name)

    def call_actor(
        self,
        actor_id: ActorID,
        method_name: str,
        args: tuple,
        kwargs: dict,
        num_returns: int = 1,
    ) -> Any:
        """Submit one actor method invocation; returns its future
        (a tuple of ``num_returns`` futures when more than one).

        The ordering dependency on the previous call's result object is
        what serializes the actor's methods — no per-actor lock exists,
        and the pinned queue only routes, never orders.
        """
        self._check_open()
        with self._cond:
            record = self.actors.get(actor_id)
            if record is None:
                raise BackendError(f"unknown actor {actor_id}")
            spec = build_call_spec(
                self.ids, record, method_name, args, kwargs,
                self.head_node_id, num_returns=num_returns,
            )
            chain_submission(record, spec)
            self._control.async_actor_update(actor_id, method_inc=True)
            self._submit_spec(spec)
            return spec.public_result()

    def _choose_worker_for_actor(
        self, placement_hint: Optional[NodeID]
    ) -> _WorkerHandle:
        """Fewest actors first, stable tie-break by index (lock held)."""
        if placement_hint is not None:
            hinted = self._by_node.get(placement_hint)
            if hinted is not None and hinted.alive:
                return hinted
        alive = [w for w in self._workers if w.alive]
        if not alive:
            raise BackendError("no live workers to host the actor")
        return min(alive, key=lambda w: (w.actors_bound, w.index))

    # ------------------------------------------------------------------
    # Blocking primitives
    # ------------------------------------------------------------------

    def get(self, refs: Any, timeout: Optional[float] = None) -> Any:
        self._check_open()
        ref_list, single = normalize_get_refs(refs)
        deadline = None if timeout is None else time.monotonic() + timeout
        values = []
        for ref in ref_list:
            values.append(self._wait_for_value(ref.object_id, deadline))
        return values[0] if single else values

    def wait(
        self,
        refs: Sequence[ObjectRef],
        num_returns: int = 1,
        timeout: Optional[float] = None,
    ) -> tuple:
        self._check_open()
        ref_list = list(refs)
        validate_wait_args(ref_list, num_returns)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                ready = [r for r in ref_list if self._has_object(r.object_id)]
                if len(ready) >= num_returns:
                    break
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(timeout=remaining)
            ready_ids = {
                r.object_id for r in ref_list if self._has_object(r.object_id)
            }
        return partition_by_ready(ref_list, lambda r: r.object_id in ready_ids)

    def put(self, value: Any) -> ObjectRef:
        self._check_open()
        if self._shm is not None:
            serialized = serialize_buffers(value)
            if not should_inline(serialized.total_bytes, self._inline_threshold):
                return self._put_large(value, serialized)
            data = serialized.in_band_bytes() or serialize(value)
        else:
            data = serialize(value)
        with self._cond:
            object_id = self.ids.object_id()
            self._store_bytes(object_id, data)
        return ObjectRef(object_id)

    def _put_large(self, value: Any, serialized) -> ObjectRef:
        """A large driver-side put: two-phase shm write so the multi-MB
        frame copy never runs under the runtime lock (the allocation is
        pending+pinned meanwhile), with pipe fallback on a full budget."""
        with self._cond:
            object_id = self.ids.object_id()
            window = self._shm.begin_put(object_id, serialized.frame_bytes)
        if window is not None:
            try:
                write_frame(window, serialized)
            except BaseException:
                with self._cond:
                    self._shm.abort(object_id)
                raise
            with self._cond:
                self._shm.finish_put(object_id)
                self._acct_shm.record_zero_copy(serialized.frame_bytes)
                self._object_arrived(object_id)
            return ObjectRef(object_id)
        # Budget full: the pipe store still works.  The re-join pickle
        # also happens outside the lock.
        data = serialized.in_band_bytes() or serialize(value)
        with self._cond:
            self._acct_shm.record_pipe_fallback(serialized.total_bytes)
            self._store_bytes(object_id, data)
        return ObjectRef(object_id)

    def cancel(self, ref: ObjectRef, recursive: bool = False) -> bool:
        """Cancel the task producing ``ref`` (shared core semantics)."""
        self._check_open()
        return lifecycle.cancel(self, ref, recursive=recursive)

    # -- lifecycle hooks (see repro.core.lifecycle); lock held ----------

    def _lifecycle_guard(self):
        return self._cond

    def _result_ready(self, object_id: ObjectID) -> bool:
        return self._has_object(object_id)

    def _store_cancelled(self, spec: TaskSpec) -> None:
        data = serialize(
            cancelled_error_value(spec, "cancelled before a result was produced")
        )
        for object_id in spec.all_return_ids():
            if not self._has_object(object_id):
                self._store_bytes(object_id, data)
        if self.dispatch_mode == "bottom_up":
            self._drop_cancelled_from_plane(spec)

    def _drop_cancelled_from_plane(self, spec: TaskSpec) -> None:
        """Evict a cancelled task from wherever the scheduling plane
        queued it (lock held).  Driver-side queues (global, placed) are
        covered by dispatch-time ``is_cancelled`` checks; a task sitting
        in a *worker's* local queue additionally gets a CANCEL_NOTICE so
        the owner drops it before dispatch — the worker-side half of the
        never-executes guarantee.  A cancel initiated by the owner
        worker itself is fully race-free: the notice is queued on its
        pipe before the CANCEL rpc's reply, so the tombstone is local by
        the time ``cancel()`` returns in the task body."""
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            if spec.task_id in worker.mirror:
                worker.mirror.remove(spec.task_id)
                self._payloads.pop(spec.task_id, None)
                try:
                    self._send_control(worker, (msg.CANCEL_NOTICE, spec.task_id))
                except OSError:
                    pass  # dying worker: the crash handler owns cleanup
                break

    def _parked_dependents(self, object_id: ObjectID) -> list:
        return lifecycle.parked_dependents(self._deps, object_id)

    def sleep(self, duration: float) -> None:
        time.sleep(duration)

    @property
    def now(self) -> float:
        """Wall-clock seconds (monotonic)."""
        return time.monotonic()

    @property
    def event_log(self):
        """The collected live trace (None unless ``tracing=True``); the
        same :class:`~repro.store.event_log.EventLog` shape as the sim's,
        so the R7 tools consume either interchangeably."""
        return self._obs.event_log

    def stats(self) -> dict:
        with self._cond:
            return {
                "tasks_executed": self._tasks_executed,
                "objects_stored": self._store.num_objects,
                "object_store_bytes": self._store.used_bytes,
                "tasks_waiting": len(self._deps),
                "actors_created": len(self.actors),
                "num_workers": sum(1 for w in self._workers if w.alive),
                "workers_crashed": self._workers_crashed,
                "tasks_cancelled": self._lifecycle.cancelled_count,
                "lineage_replays": self._lineage_replays,
                "args_inlined": self._acct_inline.snapshot(),
                "args_stored": self._acct_stored.snapshot(),
                "args_fetched": self._acct_fetched.snapshot(),
                "results_shipped": self._acct_results.snapshot(),
                "shm_enabled": self._shm is not None,
                "shm": self._acct_shm.snapshot(),
                "shm_store": None if self._shm is None else self._shm.stats(),
                "dispatch_mode": self.dispatch_mode,
                "sched": self._sched.snapshot(),
                "obs": self._obs.stats(),
                "serve": serve_stats(self._serve_pools, self._completions),
                "control": self._control.stats(),
                # Degenerate one-node cluster view: same keys as the dist
                # backend (which overrides this section), so harnesses can
                # branch on stats()["cluster"] without caring which real
                # backend is live.  No membership plane -> no heartbeats.
                "cluster": {
                    "num_nodes": 1,
                    "workers_per_node": len(self._workers),
                    "nodes_alive": 1,
                    "nodes_lost": 0,
                    "heartbeat_timeouts": 0,
                    "heartbeat_interval": None,
                    "heartbeat_timeout": None,
                    "objects_node_resident": 0,
                    "internode": ByteAccountant().snapshot(),
                    "per_node": [
                        {
                            "node_index": 0,
                            "alive": True,
                            "agent_pid": os.getpid(),
                            "shm_enabled": self._shm is not None,
                            "heartbeat_age": 0.0,
                            "workers_alive": sum(
                                1 for w in self._workers if w.alive
                            ),
                            "objects_resident": self._store.num_objects,
                            "bytes_resident": self._store.used_bytes,
                        }
                    ],
                },
            }

    # ------------------------------------------------------------------
    # Fault injection / introspection
    # ------------------------------------------------------------------

    def kill_worker(self, index: int) -> None:
        """Fault injection: SIGKILL one worker process (the ``proc``
        analogue of the sim backend's ``kill_node``).  Detection happens
        on the worker's pipe; recovery follows ``worker_crash_policy``."""
        with self._cond:
            self._check_open()
            if not 0 <= index < len(self._workers):
                raise ValueError(f"no worker with index {index}")
            worker = self._workers[index]
        worker.process.kill()

    def worker_for_actor(self, actor_id: ActorID) -> Optional[int]:
        """Index of the worker process hosting an actor (tests/tools)."""
        with self._cond:
            record = self.actors.get(actor_id)
            if record is None:
                raise BackendError(f"unknown actor {actor_id}")
            home = self._by_node.get(record.node_id)
            return home.index if home is not None else None

    def worker_pids(self) -> list:
        """PIDs of the live worker processes."""
        with self._cond:
            return [w.process.pid for w in self._workers if w.alive]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self.closed:
            raise BackendError("runtime is shut down")

    def replica_targets(self) -> list:
        """Node ids of live workers — placement targets for pool replicas."""
        with self._cond:
            return [w.node_id for w in self._workers if w is not None and w.alive]

    def register_serve_pool(self, pool) -> None:
        with self._cond:
            self._serve_pools.append(pool)

    def shutdown(self) -> None:
        if self.closed:
            return
        for pool in list(self._serve_pools):
            pool.close()
        with self._cond:
            self.closed = True
            workers = [w for w in self._workers if w is not None]
            busy = [w for w in workers if w.alive and (w.inflight or w.busy)]
            self._cond.notify_all()
        # Busy children may be deep in user code (even sleeping forever):
        # kill them; idle ones get a graceful shutdown from their service
        # thread, which wakes on ``closed`` and owns the pipe's send side.
        for worker in busy:
            worker.process.kill()
        for worker in workers:
            if worker.thread is not None:
                worker.thread.join(timeout=5.0)
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._shm is not None:
            # Guaranteed unlinking: every worker process is dead or
            # detached by now, so no shm segment name survives shutdown
            # — even after worker crashes.
            self._shm.shutdown()
        self._completions.stop()
        if self._owns_control:
            self._control.close()

    def fail_driver(self) -> None:
        """Fault injection: die like a crashed driver process.

        Tears down everything the driver owns — worker pool, service
        threads, shm segments — but NEVER the control store, which by
        design outlives the driver.  A fresh runtime constructed with
        ``control_store=<same store>, recover=True`` picks up the
        workload (see :mod:`repro.gcs.recovery`).
        """
        if self.closed:
            return
        with self._cond:
            self.closed = True
            workers = [w for w in self._workers if w is not None]
            self._cond.notify_all()
        # A crashing driver does not say goodbye: hard-kill the pool.
        for worker in workers:
            if worker.process is not None and worker.alive:
                worker.process.kill()
        for worker in workers:
            if worker.thread is not None:
                worker.thread.join(timeout=5.0)
        for worker in workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self._shm is not None:
            self._shm.shutdown()
        self._completions.stop()
        # Not ours to close even when _owns_control: the test of HA is
        # that the store keeps working after the driver is gone.

    def _recover_from_control(self) -> None:
        """Execute the dead driver's :func:`plan_recovery` plan (end of
        ``__init__``: workers are up, nothing is in flight yet)."""
        plan = plan_recovery(self._control)
        with self._cond:
            for object_id, payload in plan.ready_payloads.items():
                if not self._has_object(object_id):
                    self._store_bytes(object_id, payload)
            for object_id in plan.unrecoverable:
                # A large driver ``put`` has no lineage to replay: an
                # error marker beats a ``get`` that hangs forever.
                self._store_bytes(
                    object_id,
                    serialize(
                        ErrorValue(
                            task_id=None,
                            function_name="driver",
                            cause_repr=(
                                f"object {object_id} was lost with the failed "
                                "driver: no inline payload in the control "
                                "store and no producing task to replay"
                            ),
                            chain=("driver",),
                        )
                    ),
                )
            for entry in plan.actor_entries:
                if self.actors.get(entry.actor_id) is not None:
                    continue
                record = self.actors.create(
                    entry.actor_id,
                    entry.spec["class_name"],
                    entry.spec["resources"],
                    None,
                    name=entry.name,
                )
                # Provenance without state: the live instance died with
                # the old driver's worker pool.
                record.dead = True
                record.instance = None
            for spec in plan.pending_specs:
                if spec.actor_id is not None:
                    record = self.actors.get(spec.actor_id)
                    error = (
                        actor_lost_error_value(spec, record)
                        if record is not None
                        else ErrorValue(
                            task_id=spec.task_id,
                            function_name=spec.function_name,
                            cause_repr="actor state lost with the failed driver",
                            chain=(spec.function_name,),
                            kind="actor_lost",
                            actor_id=spec.actor_id,
                        )
                    )
                    self._store_error_all_returns(spec, error)
                else:
                    self._submit_spec(spec)
            for spec, payload in plan.pending_payloads:
                self._control.task_put(
                    spec.task_id, {"spec": spec, "payload": payload}
                )
                self._payloads[spec.task_id] = payload
                self._lifecycle.register(spec)
                missing = {
                    dep for dep in spec.dependencies()
                    if not self._has_object(dep)
                }
                if missing:
                    self._deps.add(spec, missing)
                else:
                    self._enqueue(spec)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Worker pool internals
    # ------------------------------------------------------------------

    def _spawn_worker(self, index: int) -> _WorkerHandle:
        """Start one child process + its service thread (lock held)."""
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        worker = _WorkerHandle(
            index=index,
            node_id=self.ids.node_id(),
            conn=PipeTransport(parent_conn),
        )
        # The spawn token salts the worker's local id namespace so a
        # replacement worker in the same slot never re-issues ids its
        # dead predecessor already handed out.
        self._spawn_count += 1
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_conn, index, self.seed, self._worker_cache_bytes,
                self._shm is not None, self._inline_threshold,
                self.dispatch_mode, self._spawn_count, self._spillover_policy,
                self.tracing,
            ),
            name=f"repro-proc-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its own end
        worker.process = process
        self._workers[index] = worker
        self._by_node[worker.node_id] = worker
        loop = (
            self._service_loop_bottom_up
            if self.dispatch_mode == "bottom_up"
            else self._service_loop
        )
        thread = threading.Thread(
            target=loop,
            args=(worker,),
            name=f"repro-proc-service-{index}",
            daemon=True,
        )
        worker.thread = thread
        thread.start()
        return worker

    def _send(self, worker: _WorkerHandle, message: tuple) -> None:
        """One driver->worker send, serialized per pipe: the service
        thread's replies interleave with steal requests and cancel
        notices originated by other threads.  Parked control messages
        go first, so a deferred CANCEL_NOTICE still precedes the reply
        of the rpc whose handler queued it."""
        with worker.send_lock:
            while worker.outbox:
                worker.conn.send(worker.outbox.popleft())
            worker.conn.send(message)

    def _send_control(self, worker: _WorkerHandle, message: tuple) -> None:
        """A one-way control send that NEVER blocks — safe under the
        runtime lock.  ``Connection.send`` blocks when the OS pipe
        buffer is full (a busy worker drains control only at dispatch
        boundaries), and blocking here would freeze the whole runtime;
        a congested message parks in the outbox instead, delivered by
        the worker's own service thread (:meth:`_flush_outbox`, called
        lock-free at every serving point) or ahead of its next reply."""
        with worker.send_lock:
            if not worker.outbox and worker.conn.writable():
                worker.conn.send(message)
                return
            worker.outbox.append(message)

    def _flush_outbox(self, worker: _WorkerHandle) -> None:
        """Deliver parked control messages (service thread only, runtime
        lock NOT held).  Blocking is acceptable here: only this worker's
        session stalls, and the thread was about to block on this very
        pipe anyway.  Outbox messages only exist for busy workers, whose
        service thread passes through here every serving iteration — so
        nothing can stay parked indefinitely."""
        if not worker.outbox:
            return
        with worker.send_lock:
            while worker.outbox:
                worker.conn.send(worker.outbox.popleft())

    def _service_loop(self, worker: _WorkerHandle) -> None:
        """Feed one worker process and serve its requests until shutdown."""
        while True:
            spec = self._next_task(worker)
            if spec is None:
                try:
                    self._send(worker, (msg.SHUTDOWN,))
                except OSError:
                    pass
                return
            try:
                self._execute_remote(worker, spec)
            except (EOFError, OSError) as exc:
                self._handle_worker_crash(worker, spec, exc)
                return  # a replacement thread owns the slot now

    def _next_task(self, worker: _WorkerHandle) -> Optional[TaskSpec]:
        """Block until a task is available for this worker (or shutdown)."""
        with self._cond:
            while True:
                if self.closed or not worker.alive:
                    return None
                spec = None
                if worker.pinned:
                    spec = worker.pinned.popleft()
                elif self._queue:
                    spec = self._queue.popleft()
                if spec is None:
                    self._cond.wait()
                    continue
                if self._lifecycle.is_cancelled(spec.task_id):
                    continue  # cancelled while queued: never ship it
                if spec.actor_id is not None:
                    spec = self._claim_actor_spec(worker, spec)
                    if spec is None:
                        continue
                worker.inflight.append(spec)
                return spec

    def _claim_actor_spec(
        self, worker: _WorkerHandle, spec: TaskSpec
    ) -> Optional[TaskSpec]:
        """Pre-dispatch checks for an actor task (lock held): resolve it
        to an error if its actor is dead/unbound, bounce it to its own
        worker if it was re-homed, else claim it for ``worker``."""
        error = self._actor_predispatch_error(spec)
        if error is not None:
            self._store_error_all_returns(spec, error)
            return None
        record = self.actors.get(spec.actor_id)
        if record.node_id != worker.node_id:
            self._enqueue(spec)
            self._cond.notify_all()
            return None
        return spec

    def _store_error_all_returns(self, spec: TaskSpec, error: ErrorValue) -> None:
        """Store one error value into *every* return slot of a spec
        (lock held).  A batched serving call has ``num_returns > 1``;
        filling only the primary slot would leave the other callers'
        watchers waiting forever."""
        data = serialize(error)
        for object_id in spec.all_return_ids():
            self._store_bytes(object_id, data)

    def _actor_predispatch_error(self, spec: TaskSpec) -> Optional[ErrorValue]:
        """Driver-side half of ``resolve_actor_callable`` (lock held):
        liveness checks that cannot wait for the worker, with identical
        error text to the other backends."""
        record = self.actors.get(spec.actor_id)
        if record is None:
            return ErrorValue(
                task_id=spec.task_id,
                function_name=spec.function_name,
                cause_repr=f"unknown actor {spec.actor_id}",
                chain=(spec.function_name,),
            )
        if record.dead:
            return actor_lost_error_value(spec, record)
        if spec.actor_method != CREATION_METHOD and record.instance is None:
            return ErrorValue(
                task_id=spec.task_id,
                function_name=spec.function_name,
                cause_repr=(
                    f"actor {record.class_name} has no live instance "
                    "(its constructor failed or was lost)"
                ),
                chain=(spec.function_name,),
            )
        return None

    # ------------------------------------------------------------------
    # Bottom-up mode: sessions, the mirror, and the steal broker
    # ------------------------------------------------------------------

    def _service_loop_bottom_up(self, worker: _WorkerHandle) -> None:
        """The driver tier's per-worker loop in bottom-up mode: hand the
        idle worker one task to open a *session*, then serve everything
        the session produces (rpc requests, SUBMIT_LOCAL notices, DONE
        reports, steal grants) until the worker reports IDLE."""
        while True:
            spec = self._next_task_bottom_up(worker)
            if spec is None:
                try:
                    self._send(worker, (msg.SHUTDOWN,))
                except OSError:
                    pass
                return
            try:
                self._run_session(worker, spec)
            except (EOFError, OSError) as exc:
                # No extra spec here: unlike driver mode, the session
                # opener may already be DONE (popped from inflight) with
                # the worker deep in its local queue — the inflight
                # stack plus the mirror are exactly what died.
                self._handle_worker_crash(worker, None, exc)
                return  # a replacement thread owns the slot now

    def _next_task_bottom_up(self, worker: _WorkerHandle) -> Optional[TaskSpec]:
        """Block until this worker has work (or shutdown): its pinned
        actors first, then its placed queue, then the global spillover
        queue — and, failing all three, *steal*: raid another worker's
        placed queue directly, or ask a busy worker to give up the tail
        of its local queue (answered asynchronously by a STEAL_GRANT)."""
        with self._cond:
            while True:
                if self.closed or not worker.alive:
                    return None
                spec = None
                if worker.pinned:
                    spec = worker.pinned.popleft()
                elif worker.placed:
                    spec = worker.placed.popleft()
                elif self._queue:
                    spec = self._queue.popleft()
                else:
                    spec = self._steal_placed(worker)
                if spec is None:
                    sent = self._request_remote_steal(worker)
                    # Grants/submits/arrivals all notify the cond; the
                    # timeout is a backstop, not the steal clock.  Only a
                    # freshly-sent steal request warrants a short backstop
                    # (the grant lands on the victim's pipe, not ours) —
                    # a truly idle worker can sleep until notified.
                    self._cond.wait(
                        timeout=10 * _STEAL_POLL_INTERVAL
                        if sent
                        else _IDLE_WAIT_BACKSTOP
                    )
                    continue
                if self._lifecycle.is_cancelled(spec.task_id):
                    self._payloads.pop(spec.task_id, None)
                    continue  # cancelled while queued: never ship it
                if spec.actor_id is not None:
                    spec = self._claim_actor_spec(worker, spec)
                    if spec is None:
                        continue
                worker.inflight.append(spec)
                worker.busy = True
                return spec

    def _steal_placed(self, thief: _WorkerHandle) -> Optional[TaskSpec]:
        """Driver-side steal: move one task from the longest placed
        queue of another live worker (lock held).  No wire protocol —
        placed queues live on the driver, so the raid is a deque pop."""
        if not self._steal_policy.enabled:
            return None
        victim = None
        for worker in self._workers:
            if worker is None or worker is thief or not worker.alive:
                continue
            if not worker.placed:
                continue
            if victim is None or len(worker.placed) > len(victim.placed):
                victim = worker
        if victim is None:
            return None
        self._sched.tasks_stolen += 1
        spec = victim.placed.popleft()
        if self._obs.enabled:
            self._obs.record(
                "task_stolen",
                task_id=str(spec.task_id),
                thief=f"worker-{thief.index}",
                victim=f"worker-{victim.index}",
                wire=False,
            )
        return spec

    def _request_remote_steal(
        self, thief: _WorkerHandle, include_self: bool = False
    ) -> bool:
        """Ask the most-backlogged busy worker for the tail of its local
        queue (lock held); True iff a request actually went out on the
        wire.  At most one request per victim is in flight; the grant
        comes back on the victim's pipe and is applied by the victim's
        own service thread.

        ``include_self`` lets a *blocked* worker raid its own queue: the
        child answers the request from its reply-wait loop, the grant
        re-homes the tasks through the global queue, and the service
        thread can then inject them back reentrantly — which is how a
        worker blocked on its own locally-born tasks unwedges itself."""
        if not self._steal_policy.enabled:
            return False
        victim = None
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            if worker is thief and not include_self:
                continue
            if not worker.busy or worker.steal_outstanding:
                continue
            if not self._steal_policy.should_steal(len(worker.mirror)):
                continue
            if victim is None or len(worker.mirror) > len(victim.mirror):
                victim = worker
        if victim is None:
            return False
        victim.steal_outstanding = True
        try:
            self._send_control(
                victim,
                (
                    msg.STEAL_REQUEST,
                    self._steal_policy.batch_size(len(victim.mirror)),
                ),
            )
        except OSError:
            return False  # victim died; its crash handler owns the cleanup
        return True

    def _handle_async_report(self, worker: _WorkerHandle, message: tuple) -> bool:
        """One arm for the one-way worker reports every bottom-up
        serving loop shares; False if the message was something else
        (an rpc request, or IDLE — the callers' loop-exit conditions)."""
        tag = message[0]
        if tag == msg.DONE:
            if len(message) > 4:  # optional trailing obs blob
                self._ingest_worker_obs(worker, message[4])
            self._finish_done(worker, message[1], message[2], message[3])
        elif tag == msg.SUBMIT_LOCAL:
            self._register_local_submit(worker, message[1])
        elif tag == msg.STEAL_GRANT:
            self._apply_steal_grant(worker, message[1])
        elif tag == msg.SPANS:
            self._ingest_worker_obs(worker, message[1])
        else:
            return False
        return True

    def _obs_worker_extra(self, worker: _WorkerHandle) -> dict:
        """Identity keys stamped onto spans a worker recorded about
        itself (it does not know its driver-side names).  The dist
        backend overrides this to name the worker's real node."""
        return {"worker": f"worker-{worker.index}", "node": "node-0"}

    def _ingest_worker_obs(self, worker: _WorkerHandle, blob: Any) -> None:
        """Merge one worker's flushed span buffer onto the timeline."""
        if blob is not None and self._obs.enabled:
            self._obs.ingest(
                ("worker", worker.index),
                blob,
                extra=self._obs_worker_extra(worker),
            )

    def _fail_payload(
        self, worker: _WorkerHandle, spec: TaskSpec, exc: BaseException
    ) -> None:
        """A task whose payload could not be built (lost argument,
        unpicklable code) resolves to an error value in every slot."""
        with self._cond:
            worker.inflight.remove(spec)
            data = serialize(error_value_from(spec, exc))
            for object_id in spec.all_return_ids():
                self._store_bytes(object_id, data)

    def _run_session(self, worker: _WorkerHandle, spec: TaskSpec) -> None:
        """Ship one task and serve the whole session it opens."""
        try:
            payload = self._build_payload(spec, worker)
        except (TypeError, ReproError) as exc:
            self._fail_payload(worker, spec, exc)
            with self._cond:
                worker.busy = False
            return
        self._send(worker, (msg.TASK, payload))
        while True:
            self._flush_outbox(worker)
            message = worker.conn.recv()
            if self._handle_async_report(worker, message):
                continue
            if message[0] == msg.IDLE:
                if len(message) > 1:  # optional trailing obs blob
                    self._ingest_worker_obs(worker, message[1])
                with self._cond:
                    worker.busy = False
                    self._cond.notify_all()
                return
            self._serve_rpc(worker, message)

    def _register_local_submit(self, worker: _WorkerHandle, notices: list) -> None:
        """A worker kept nested tasks on its own queue (the fast path);
        register lineage/lifecycle state from the one-way notice batch,
        mirror the queue entries, and ack the batch with one PLACED.
        Pipe FIFO guarantees this runs before any DONE or STEAL_GRANT
        mentioning any of the tasks."""
        placed_ids = []
        with self._cond:
            for notice in notices:
                payload = notice["payload"]
                spec = TaskSpec(
                    task_id=payload["task_id"],
                    function_id=payload["function_id"],
                    function_name=notice["function_name"],
                    return_object_id=payload["return_object_id"],
                    return_object_ids=tuple(payload["return_object_ids"]),
                    num_returns=payload["num_returns"],
                    resources=notice["resources"],
                    submitted_from=notice["submitted_from"],
                    max_reconstructions=notice["max_reconstructions"],
                    root_task_id=notice.get("root_task_id"),
                    parent_task_id=notice.get("parent_task_id"),
                )
                self._lifecycle.register(spec)
                worker.mirror.push(spec.task_id, spec)
                self._payloads[spec.task_id] = payload
                # Worker-born lineage: async by design (the fast path is
                # already acked one-way); the wire payload is the replay
                # form, the spec the bookkeeping form.
                self._control.async_task_put(
                    spec.task_id,
                    {"spec": spec, "payload": payload},
                    node=worker.node_id,
                )
                self._sched.tasks_placed_local += 1
                placed_ids.append(spec.task_id)
            self._cond.notify_all()  # idle thieves may now see a victim
        self._send(worker, (msg.PLACED, placed_ids))

    def _apply_steal_grant(self, victim: _WorkerHandle, task_ids: list) -> None:
        """The victim gave up the tail of its local queue: re-home those
        tasks through the global queue.  The victim is the queue's only
        executor, so everything granted is provably not running there;
        ids missing from the mirror were cancelled in the meantime and
        stay dropped."""
        with self._cond:
            victim.steal_outstanding = False
            for task_id in task_ids:
                spec = victim.mirror.remove(task_id)
                if spec is None or self._lifecycle.is_cancelled(task_id):
                    self._payloads.pop(task_id, None)
                    continue
                self._sched.tasks_stolen += 1
                if self._obs.enabled:
                    self._obs.record(
                        "task_stolen",
                        task_id=str(task_id),
                        victim=f"worker-{victim.index}",
                        wire=True,
                    )
                self._control.async_task_update(task_id, state="stolen")
                self._queue.append(spec)
            self._cond.notify_all()

    def _finish_done(
        self, worker: _WorkerHandle, task_id: Any, blobs: list, failed: bool
    ) -> None:
        """One DONE report: resolve the task id against the worker's
        inflight stack (driver-shipped) or its mirror (locally-born)."""
        with self._cond:
            spec = next(
                (s for s in worker.inflight if s.task_id == task_id), None
            )
            if spec is not None:
                worker.inflight.remove(spec)
            else:
                spec = worker.mirror.remove(task_id)
            self._payloads.pop(task_id, None)
            if spec is None:
                # Cancelled while mid-run on the worker: the marker owns
                # the result slots; drop the blobs (and any arena space
                # the worker filled for them).
                if self._shm is not None:
                    for blob in blobs:
                        if isinstance(blob, ShmDescriptor):
                            self._shm.abort(blob.object_id)
                return
            self._finish_spec(worker, spec, blobs, failed)

    def _drain_worker_messages(self, worker: _WorkerHandle) -> None:
        """Pump buffered worker messages while the worker is blocked in
        a get/wait rpc (bottom-up only; called by its service thread).

        A blocked worker still answers steal requests inside its
        reply-wait loop, but this service thread is parked on the
        condition variable, not the pipe — without this drain a grant
        would sit unread and the stolen tasks (possibly the very tasks
        the blocked worker is waiting on) would never be re-homed."""
        self._flush_outbox(worker)
        while worker.conn.poll():
            message = worker.conn.recv()
            if not self._handle_async_report(worker, message):
                # The blocked child is awaiting OUR reply: it cannot have
                # issued another request, so anything else is a protocol bug.
                raise BackendError(
                    f"unexpected worker message {message[0]!r} while "
                    "serving a blocked worker"
                )

    # ------------------------------------------------------------------
    # One task on one worker
    # ------------------------------------------------------------------

    def _execute_remote(self, worker: _WorkerHandle, spec: TaskSpec) -> None:
        """Ship a task, serve the worker's requests, store the result.

        Pipe failures propagate to the caller (crash handling); anything
        unserializable resolves the task to an error value instead."""
        try:
            payload = self._build_payload(spec, worker)
        except (TypeError, ReproError) as exc:
            self._fail_payload(worker, spec, exc)
            return
        self._send(worker, (msg.TASK, payload))
        while True:
            message = worker.conn.recv()
            if message[0] == msg.RESULT:
                if len(message) > 3:  # optional trailing obs blob
                    self._ingest_worker_obs(worker, message[3])
                self._finish_task(worker, spec, message[1], failed=message[2])
                return
            if message[0] == msg.SPANS:
                self._ingest_worker_obs(worker, message[1])
                continue
            self._serve_rpc(worker, message)

    def _dispatch_nested(self, worker: _WorkerHandle, spec: TaskSpec) -> None:
        """Run one pinned actor task *inside* a worker that is currently
        blocked awaiting an RPC reply (it executes reentrantly there)."""
        with self._cond:
            worker.inflight.append(spec)
        if self.dispatch_mode != "bottom_up":
            self._execute_remote(worker, spec)
            return
        # Bottom-up: same injection, but completions are DONE reports
        # and the blocked worker may interleave notices and grants.
        try:
            payload = self._build_payload(spec, worker)
        except (TypeError, ReproError) as exc:
            self._fail_payload(worker, spec, exc)
            return
        self._send(worker, (msg.TASK, payload))
        while True:
            self._flush_outbox(worker)
            message = worker.conn.recv()
            if message[0] == msg.DONE and message[1] == spec.task_id:
                if len(message) > 4:  # optional trailing obs blob
                    self._ingest_worker_obs(worker, message[4])
                self._finish_done(worker, message[1], message[2], message[3])
                return
            if not self._handle_async_report(worker, message):
                self._serve_rpc(worker, message)

    def _build_payload(self, spec: TaskSpec, worker: _WorkerHandle) -> dict:
        """Resolve ref arguments into inline blobs or store markers.

        Worker-born tasks (bottom-up fast path) already carry their
        payload — built by the submitting worker and mirrored here via
        SUBMIT_LOCAL — so steal and crash-replay dispatches reuse it
        verbatim; ref slots resolve through FETCH/shm on the executing
        worker."""
        existing = self._payloads.get(spec.task_id)
        if existing is not None:
            return existing
        inline: dict[ObjectID, bytes] = {}
        with self._cond:
            def slot(value: Any) -> Any:
                if not isinstance(value, ObjectRef):
                    return value
                if self._shm is not None:
                    described = self._shm.describe(value.object_id)
                    if described is not None:
                        # Shared-memory resident: the descriptor itself
                        # rides in the SlotRef — the worker attaches and
                        # reads zero-copy with no extra round trip.
                        segment, shm_slot, size = described
                        self._acct_shm.record_zero_copy(size)
                        self._residency.record(
                            worker.index, value.object_id, size
                        )
                        return SlotRef(
                            value.object_id,
                            shm=ShmDescriptor(
                                value.object_id, segment, shm_slot, size
                            ),
                        )
                data = self._store.get(value.object_id)
                if data is None:
                    raise ObjectLostError(
                        f"argument object {value.object_id} is no longer in "
                        "the driver store"
                    )
                if should_inline(len(data), self._inline_threshold):
                    inline[value.object_id] = data
                    self._acct_inline.record(len(data))
                else:
                    self._acct_stored.record(len(data))
                self._residency.record(worker.index, value.object_id, len(data))
                return SlotRef(value.object_id)

            args_template = tuple(slot(value) for value in spec.args)
            kwargs_template = {
                key: slot(value) for key, value in spec.kwargs.items()
            }
        payload = {
            "task_id": spec.task_id,
            "function_id": spec.function_id,
            "function_name": spec.function_name,
            "return_object_id": spec.return_object_id,
            "return_object_ids": spec.all_return_ids(),
            "num_returns": spec.num_returns,
            "root_task_id": spec.root_task_id,
            "parent_task_id": spec.parent_task_id,
            "call_bytes": serialize_portable((args_template, kwargs_template)),
            "inline": inline,
        }
        if spec.actor_id is not None:
            record = self.actors.get(spec.actor_id)
            payload["actor_id"] = spec.actor_id
            payload["method"] = spec.actor_method
            payload["class_name"] = record.class_name if record else spec.function_name
            payload["resources"] = spec.resources
            if spec.actor_method == CREATION_METHOD:
                payload["function_bytes"] = self._function_bytes(spec)
        else:
            payload["function_bytes"] = self._function_bytes(spec)
        return payload

    def _function_bytes(self, spec: TaskSpec) -> bytes:
        cached = self._fn_cache.get(spec.function_id)
        if cached is None:
            function = spec.function
            if function is None:
                with self._cond:
                    function = self._functions.get(spec.function_id)
            if function is None:
                raise BackendError(
                    f"function {spec.function_name!r} not registered"
                )
            cached = serialize_portable(function)
            self._fn_cache[spec.function_id] = cached
        return cached

    def _finish_task(
        self, worker: _WorkerHandle, spec: TaskSpec, blobs: list, failed: bool
    ) -> None:
        with self._cond:
            worker.inflight.remove(spec)
            self._finish_spec(worker, spec, blobs, failed)

    def _finish_spec(
        self, worker: _WorkerHandle, spec: TaskSpec, blobs: list, failed: bool
    ) -> None:
        """Record one completed task and publish its results (lock held;
        the spec is already off the inflight stack / mirror)."""
        worker.tasks_done += 1
        self._tasks_executed += 1
        self._control.async_task_update(
            spec.task_id,
            state="failed" if failed else "finished",
            node=worker.node_id,
        )
        self._acct_results.record(
            sum(len(data) for data in blobs if not isinstance(data, ShmDescriptor))
        )
        if spec.actor_id is not None:
            record = self.actors.get(spec.actor_id)
            if record is not None and not record.dead and not failed:
                if spec.actor_method == CREATION_METHOD:
                    # The live instance exists in the worker process;
                    # the driver records only that binding.
                    register_instance(record, REMOTE_INSTANCE, worker.node_id)
                    self._control.async_actor_update(
                        spec.actor_id, state="alive", node=worker.node_id
                    )
                else:
                    record.methods_executed += 1
        if self._lifecycle.is_cancelled(spec.task_id):
            # Cancelled mid-run: the marker owns the slots; shm
            # allocations the worker filled are dropped unsealed.
            if self._shm is not None:
                for blob in blobs:
                    if isinstance(blob, ShmDescriptor):
                        self._shm.abort(blob.object_id)
            return
        for object_id, data in zip(spec.all_return_ids(), blobs):
            if isinstance(data, ShmDescriptor):
                # The payload is already in shared memory (the worker
                # wrote it through its own mapping): publish it.
                self._shm.seal(object_id)
                self._acct_shm.record_zero_copy(data.size)
                if self._obs.enabled:
                    self._obs.record(
                        "shm_seal", object_id=str(object_id), size=data.size
                    )
                self._object_arrived(object_id)
                continue
            try:
                self._store_bytes(object_id, data)
            except ReproError as exc:
                # Store full: keep consumers unblocked with a tiny marker.
                self._store_bytes(
                    object_id, serialize(error_value_from(spec, exc))
                )
        if self._obs.enabled:
            self._obs.record(
                "result_stored",
                task_id=str(spec.task_id),
                function=spec.function_name,
                worker=f"worker-{worker.index}",
                num_returns=spec.num_returns,
                failed=failed,
            )

    # ------------------------------------------------------------------
    # Worker request service
    # ------------------------------------------------------------------

    def _serve_rpc(self, worker: _WorkerHandle, message: tuple) -> None:
        tag = message[0]
        try:
            if tag == msg.FETCH:
                reply = self._fetch_bytes(worker, message[1])
            elif tag == msg.SUBMIT:
                reply = self._submit_from_worker(message[1])
            elif tag == msg.GET:
                reply = self._serve_get(worker, message[1], message[2])
            elif tag == msg.WAIT:
                reply = self._serve_wait(
                    worker, message[1], message[2], message[3]
                )
            elif tag == msg.PUT:
                reply = self._put_bytes(worker, message[1])
            elif tag == msg.SHM_ATTACH:
                reply = self._shm_attach(worker, message[1])
            elif tag == msg.SHM_CREATE:
                reply = self._shm_create(worker, message[1], message[2])
            elif tag == msg.SHM_SEAL:
                reply = self._shm_seal(worker, message[1])
            elif tag == msg.SHM_ABORT:
                reply = self._shm_abort(message[1])
            elif tag == msg.CANCEL:
                reply = self.cancel(message[1], recursive=message[2])
            elif tag == msg.GET_ACTOR:
                reply = self.get_actor(message[1])
            elif tag == msg.CREATE_ACTOR:
                reply = self._create_actor_from_worker(message[1])
            elif tag == msg.CALL_ACTOR:
                payload = message[1]
                args, kwargs = deserialize_portable(payload["call_bytes"])
                reply = self.call_actor(
                    payload["actor_id"],
                    payload["method"],
                    args,
                    kwargs,
                    num_returns=payload.get("num_returns", 1),
                )
            else:
                raise BackendError(f"unknown worker message {tag!r}")
        except (EOFError, OSError):
            raise  # pipe failure: crash handling, not an error reply
        except BaseException as exc:  # noqa: BLE001 - user payloads can
            # raise anything (hostile __setstate__, unpicklable args); the
            # service thread must survive and answer, or the parked child
            # process is stranded forever with no crash to detect.
            self._send(worker, (msg.ERR, _pipe_safe_error(tag, exc)))
        else:
            self._send(worker, (msg.OK, reply))

    def _fetch_bytes(self, worker: _WorkerHandle, object_id: ObjectID) -> bytes:
        with self._cond:
            data = self._store.get(object_id)
            if data is None and self._shm is not None and self._shm.contains(
                object_id
            ):
                # A worker that cannot map the segment asked for bytes:
                # re-join the shm payload in-band (the one copy the data
                # plane normally avoids).
                data = serialize(self._shm.load(object_id))
                self._acct_shm.record_pipe_fallback(len(data))
            if data is None:
                raise ObjectLostError(
                    f"object {object_id} is not resident in the driver store"
                )
            self._acct_fetched.record(len(data))
            if self._obs.enabled:
                self._obs.record(
                    "object_fetch",
                    object_id=str(object_id),
                    size=len(data),
                    worker=f"worker-{worker.index}",
                )
            # The worker caches what it fetches: from here on the object
            # is locality-resident there.
            self._residency.record(worker.index, object_id, len(data))
            return data

    def _blob_for(self, object_id: ObjectID) -> Any:
        """The pipe representation of a resident object: a descriptor
        when it lives in shared memory, its bytes otherwise (lock held)."""
        if self._shm is not None:
            described = self._shm.describe(object_id)
            if described is not None:
                segment, slot, size = described
                self._acct_shm.record_zero_copy(size)
                return ShmDescriptor(object_id, segment, slot, size)
        return self._store.get(object_id)

    def _shm_attach(self, worker: _WorkerHandle, object_id: ObjectID) -> Any:
        """Serve a worker's metadata-only fetch: descriptor when the
        object is shm-resident, bytes fallback otherwise."""
        with self._cond:
            blob = self._blob_for(object_id)
            if blob is None:
                raise ObjectLostError(
                    f"object {object_id} is not resident in the driver store"
                )
            if isinstance(blob, ShmDescriptor):
                self._residency.record(worker.index, object_id, blob.size)
            else:
                self._acct_fetched.record(len(blob))
            return blob

    def _shm_abort(self, object_id: ObjectID) -> None:
        """A worker hands back a granted allocation it could not write
        (it is falling back to the pipe): return the space at once."""
        with self._cond:
            if self._shm is not None:
                self._shm.abort_if_pending(object_id)

    def _shm_create(
        self, worker: _WorkerHandle, object_id: Optional[ObjectID], nbytes: int
    ) -> Optional[ShmDescriptor]:
        """Grant (or refuse) a worker's request to write ``nbytes``
        directly into shared memory.  ``object_id=None`` allocates a
        fresh id (the put path)."""
        with self._cond:
            if self._shm is None:
                return None
            if object_id is None:
                object_id = self.ids.object_id()
            granted = self._shm.create_for_client(
                object_id, nbytes, client=worker.index + 1
            )
            if granted is None:
                self._acct_shm.record_pipe_fallback(nbytes)
                return None
            segment, slot, size = granted
            return ShmDescriptor(object_id, segment, slot, size)

    def _shm_seal(self, worker: _WorkerHandle, object_id: ObjectID) -> ObjectRef:
        """Publish a worker-filled allocation (the put path's second
        phase) and wake anything parked on the object."""
        with self._cond:
            if self._shm is None or not self._shm.seal(object_id):
                raise ObjectLostError(
                    f"shm allocation for {object_id} no longer exists"
                )
            size = self._shm.size_of(object_id) or 0
            self._acct_shm.record_zero_copy(size)
            if self._obs.enabled:
                self._obs.record(
                    "shm_seal",
                    object_id=str(object_id),
                    size=size,
                    worker=f"worker-{worker.index}",
                )
            self._residency.record(worker.index, object_id, size)
            self._object_arrived(object_id)
        return ObjectRef(object_id)

    def _serve_get(
        self, worker: _WorkerHandle, object_ids: list, timeout: Optional[float]
    ) -> list:
        """A worker-side ``get``: like the driver's, but while blocked it
        keeps the worker's pinned actor queue moving (see
        :meth:`_wait_serving`) so an actor task cannot deadlock against
        the very worker that must run it."""
        deadline = None if timeout is None else time.monotonic() + timeout
        blobs = []
        for object_id in object_ids:
            arrived = self._wait_serving(
                worker,
                lambda oid=object_id: self._has_object(oid),
                deadline,
            )
            if not arrived:
                raise GetTimeoutError(f"get timed out waiting for {object_id}")
            with self._cond:
                blobs.append(self._blob_for(object_id))
        return blobs

    def _serve_wait(
        self,
        worker: _WorkerHandle,
        refs: Sequence[ObjectRef],
        num_returns: int,
        timeout: Optional[float],
    ) -> tuple:
        """A worker-side ``wait``; same pinned-queue service as get."""
        ref_list = list(refs)
        validate_wait_args(ref_list, num_returns)
        deadline = None if timeout is None else time.monotonic() + timeout
        self._wait_serving(
            worker,
            lambda: sum(
                1 for r in ref_list if self._has_object(r.object_id)
            ) >= num_returns,
            deadline,
        )
        with self._cond:
            ready_ids = {
                r.object_id for r in ref_list if self._has_object(r.object_id)
            }
        return partition_by_ready(ref_list, lambda r: r.object_id in ready_ids)

    def _wait_serving(
        self,
        worker: _WorkerHandle,
        predicate: Callable[[], bool],
        deadline: Optional[float],
    ) -> bool:
        """Block until ``predicate()`` holds (True) or the deadline passes
        (False), dispatching the worker's pinned actor tasks in the
        meantime.

        ``worker``'s child process is parked in ``recv`` awaiting our
        reply, so tasks pinned to it — possibly the very ones the blocked
        task is getting — can only run if we feed them to it now; the
        child executes them reentrantly (see ``ProcWorker.rpc``).

        In bottom-up mode a blocked worker stays a full execution
        resource, which is what makes a fully-blocked pool deadlock-free
        (driver mode, the ablation baseline, pumps only pinned tasks):

        * runnable stateless work — its placed queue, the global queue —
          is injected reentrantly exactly like pinned tasks;
        * its own local queue is recovered by *self-steal*: the blocked
          child answers STEAL_REQUESTs from its reply-wait loop, the
          grant re-homes the tasks into the global queue, and they come
          back through the injection path above;
        * the pipe is polled for those grants (this thread is their only
          reader), and busy peers are raided on this worker's behalf.
        """
        bottom_up = self.dispatch_mode == "bottom_up"
        while True:
            nested: Optional[TaskSpec] = None
            drain = False
            with self._cond:
                while True:
                    if predicate():
                        return True
                    if worker.pinned:
                        claimed = self._claim_actor_spec(
                            worker, worker.pinned.popleft()
                        )
                        if claimed is not None:
                            nested = claimed
                            break
                        continue
                    if bottom_up and (worker.placed or self._queue):
                        spec = (
                            worker.placed.popleft()
                            if worker.placed
                            else self._queue.popleft()
                        )
                        if self._lifecycle.is_cancelled(spec.task_id):
                            self._payloads.pop(spec.task_id, None)
                            continue
                        if spec.actor_id is not None:
                            claimed = self._claim_actor_spec(worker, spec)
                            if claimed is None:
                                continue
                            spec = claimed
                        nested = spec
                        break
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return False
                    if bottom_up:
                        self._request_remote_steal(worker, include_self=True)
                        # Steal grants land on *this worker's* pipe, which
                        # only this thread reads — so poll fast exactly
                        # while a grant (or queued outbox push) may be
                        # sitting there, and otherwise rely on the cond
                        # edges with a coarse backstop.
                        pipe_work = worker.steal_outstanding or worker.outbox
                        interval = (
                            _STEAL_POLL_INTERVAL
                            if pipe_work
                            else _BLOCKED_WAIT_BACKSTOP
                        )
                        self._cond.wait(
                            timeout=interval
                            if remaining is None
                            else min(remaining, interval)
                        )
                        drain = True
                        break
                    self._cond.wait(timeout=remaining)
            if nested is not None:
                self._dispatch_nested(worker, nested)
            elif drain:
                self._drain_worker_messages(worker)

    def _put_bytes(self, worker: _WorkerHandle, data: bytes) -> ObjectRef:
        with self._cond:
            object_id = self.ids.object_id()
            self._store_bytes(object_id, data)
            # The putting worker keeps a copy in its cache.
            self._residency.record(worker.index, object_id, len(data))
        return ObjectRef(object_id)

    def _submit_from_worker(self, payload: dict) -> Any:
        function = deserialize_portable(payload["function_bytes"])
        args, kwargs = deserialize_portable(payload["call_bytes"])
        if self.dispatch_mode == "bottom_up":
            # A worker-born task that could not take the fast path
            # (unresolved/non-resident deps, misfit resources, backlog):
            # the paper's spillover stream into the driver tier.
            with self._cond:
                self._sched.tasks_spilled += 1
                if self._obs.enabled:
                    self._obs.record(
                        "task_spilled", function=payload["function_name"]
                    )
        return self.submit_task(
            function=function,
            function_id=self.ids.function_id(),
            function_name=payload["function_name"],
            args=args,
            kwargs=kwargs,
            options=payload["options"],
            root_task_id=payload.get("root_task_id"),
            parent_task_id=payload.get("parent_task_id"),
        )

    def _create_actor_from_worker(self, payload: dict) -> ActorHandle:
        actor_class = deserialize_portable(payload["class_bytes"])
        args, kwargs = deserialize_portable(payload["call_bytes"])
        return self.create_actor(
            actor_class=actor_class,
            class_name=payload["class_name"],
            args=args,
            kwargs=kwargs,
            resources=payload["resources"],
            placement_hint=payload.get("placement_hint"),
            name=payload.get("name"),
        )

    # ------------------------------------------------------------------
    # Object store plumbing
    # ------------------------------------------------------------------

    def _has_object(self, object_id: ObjectID) -> bool:
        """Residency across both planes: pipe store or shm (lock held)."""
        if self._store.contains(object_id):
            return True
        return self._shm is not None and self._shm.contains(object_id)

    def _store_bytes(self, object_id: ObjectID, data: bytes) -> None:
        """Insert a result object and wake dependents/waiters (lock held).

        Results are pinned: the driver store is their only replica, so
        LRU pressure must evict nothing (capacity overflow surfaces as
        ObjectStoreFullError instead of a silent loss).

        Deliberately does NOT touch a pending shm grant for the same id
        (e.g. a cancellation marker racing a worker's result write): the
        granted slot may be mid-``write_frame`` in the worker, so its
        space is only reclaimed once the writer is provably done (its
        RESULT arrived, its SHM_ABORT arrived, or it crashed)."""
        self._store.put(object_id, data)
        self._store.pin(object_id)
        self._object_arrived(object_id)

    def _object_arrived(self, object_id: ObjectID) -> None:
        """Wake dependents, waiters, and watchers of a newly resident
        object, whichever plane it landed in (lock held)."""
        self._control_note_arrival(object_id)
        for spec in self._deps.mark_ready(object_id):
            self._enqueue(spec)
        self._completions.notify(object_id)
        self._cond.notify_all()

    def _control_note_arrival(self, object_id: ObjectID) -> None:
        """Async residency update into the object table (lock held).
        Small payloads ride along inline — that is what a recovered
        driver restores without re-executing producers."""
        data = self._store.get(object_id)
        if data is not None:
            payload = bytes(data) if len(data) <= self._inline_threshold else None
            self._control.async_object_put(
                object_id,
                size=len(data),
                location="driver",
                ready=True,
                payload=payload,
            )
            return
        if self._shm is not None:
            size = self._shm.size_of(object_id)
            if size:
                self._control.async_object_put(
                    object_id, size=size, location="driver-shm", ready=True
                )

    def watch_object(self, object_id: ObjectID, callback) -> None:
        """Event-driven completion: ``callback(object_id)`` fires exactly
        once, on the pump thread, when the object is (or already was)
        resident — the serving plane's alternative to a blocked ``get``."""
        with self._cond:
            self._completions.add_watch(
                object_id, callback, ready=self._has_object(object_id)
            )

    def _wait_for_value(self, object_id: ObjectID, deadline: Optional[float]) -> Any:
        """Block until an object is resident, then load and unwrap it —
        zero-copy from shm (reconstructed buffers alias the arena),
        deserialized from bytes on the pipe plane.  Deserialization of
        either plane happens outside the lock (the object is pinned, so
        neither the window nor the bytes can move)."""
        view = data = None
        with self._cond:
            while not self._has_object(object_id):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise GetTimeoutError(
                            f"get timed out waiting for {object_id}"
                        )
                self._cond.wait(timeout=remaining)
            if self._shm is not None:
                view = self._shm.view(object_id)
            if view is not None:
                self._acct_shm.record_zero_copy(view.nbytes)
            else:
                data = self._store.get(object_id)
        if view is not None:
            return unwrap_loaded(deserialize_frame(view))
        return unwrap_value(data)

    # ------------------------------------------------------------------
    # Crash handling
    # ------------------------------------------------------------------

    def _handle_worker_crash(
        self, worker: _WorkerHandle, inflight: Optional[TaskSpec], exc: BaseException
    ) -> None:
        """A worker process died (EOF/error on its pipe).

        Mirrors the sim backend's node-death semantics: actors whose state
        lived there are lost for good (ActorLostError), stateless tasks
        are replayed from their spec (lineage), and the pool heals by
        spawning a replacement process into the same slot."""
        with self._cond:
            if self.closed or not worker.alive:
                return
            worker.alive = False
            # Everything on the reentrant stack died with the process, not
            # just the spec the crashing frame was driving.
            doomed = list(worker.inflight)
            if inflight is not None and inflight not in doomed:
                doomed.append(inflight)
            worker.inflight.clear()
            # Bottom-up: the worker's local queue died with it, but the
            # mirror has every task (SUBMIT_LOCAL precedes everything
            # else on the pipe) and _payloads still holds their shipped
            # forms — re-home them through the same lineage-replay gate
            # as the in-flight stack.  This also covers tasks mid-steal:
            # a grant the victim never delivered leaves them in the
            # mirror, so they are re-homed here instead of lost.
            for _task_id, mirrored in worker.mirror.drain():
                if mirrored not in doomed:
                    doomed.append(mirrored)
            # Driver-placed tasks never reached the worker: re-place
            # them on the survivors (no replay budget consumed).
            replaced = list(worker.placed)
            worker.placed.clear()
            worker.busy = False
            worker.steal_outstanding = False
            self._residency.forget_holder(worker.index)
            self._workers_crashed += 1
            if self._obs.enabled:
                self._obs.record(
                    "failure_detected",
                    worker=f"worker-{worker.index}",
                    node=str(worker.node_id),
                    reason="worker_crashed",
                )
            self._by_node.pop(worker.node_id, None)
            try:
                worker.conn.close()
            except OSError:
                pass
            if self._shm is not None:
                # The reaper: zero the dead worker's refcount column and
                # abort its unsealed allocations, so objects it was
                # reading mid-crash become reclaimable and half-written
                # results never become readable.
                self._shm.reclaim_client(worker.index + 1)
            self.actors.mark_dead_on_node(worker.node_id)
            for spec in doomed:
                self._resolve_crashed_task(spec)
            rehome: list[TaskSpec] = []
            while worker.pinned:
                spec = worker.pinned.popleft()
                record = self.actors.get(spec.actor_id) if spec.actor_id else None
                if record is not None and record.dead:
                    self._store_error_all_returns(
                        spec, actor_lost_error_value(spec, record)
                    )
                elif record is not None:
                    rehome.append(spec)  # constructor never ran: recoverable
                else:
                    self._queue.append(spec)
            replacement = self._spawn_worker(worker.index)
            # Every surviving actor record still homed on the dead node is
            # an unconstructed actor (mark_dead_on_node killed the rest) —
            # re-point them all at the replacement, including those whose
            # creation spec is still *parked* in the DependencyTracker:
            # when it becomes runnable, _enqueue routes by record.node_id,
            # and a stale pointer would make it bounce between service
            # threads forever.
            for record in self.actors.alive_on_node(worker.node_id):
                record.node_id = replacement.node_id
                replacement.actors_bound += 1
            for spec in rehome:
                spec.placement_hint = replacement.node_id
                replacement.pinned.append(spec)
            for spec in replaced:
                # Placement re-runs against the healed pool; a stale
                # placement_hint pointing at the dead node must not pin
                # the task to a queue nobody drains.
                if spec.placement_hint == worker.node_id:
                    spec.placement_hint = None
                self._enqueue(spec)
            self._cond.notify_all()

    def _resolve_crashed_task(self, spec: TaskSpec) -> None:
        """Decide the fate of the task in flight on a dead worker (lock held)."""
        if spec.actor_id is not None:
            record = self.actors.get(spec.actor_id)
            if record is not None:
                if not record.dead:
                    # The constructor was mid-run: its half-built state
                    # died with the process.
                    record.dead = True
                    record.instance = None
                self._store_error_all_returns(
                    spec, actor_lost_error_value(spec, record)
                )
            return
        if self._lifecycle.is_cancelled(spec.task_id):
            self._payloads.pop(spec.task_id, None)
            return  # the cancellation marker already owns its slots
        attempts = self._replays.get(spec.task_id, 0)
        if self._crash_policy == "replace" and attempts < spec.max_reconstructions:
            self._replays[spec.task_id] = attempts + 1
            self._lineage_replays += 1
            if self._obs.enabled:
                self._obs.record(
                    "lineage_replay",
                    task_id=str(spec.task_id),
                    function=spec.function_name,
                    attempt=attempts + 1,
                )
            self._control.async_task_update(
                spec.task_id, state="replaying", attempt=True
            )
            # Worker-born tasks keep their _payloads entry: the replay
            # dispatch reships the exact payload the dead worker built.
            self._queue.append(spec)
            return
        self._payloads.pop(spec.task_id, None)
        if self._crash_policy == "fail":
            detail = "worker_crash_policy='fail' disables lineage replay"
        else:
            detail = (
                f"lineage replay budget exhausted "
                f"({attempts}/{spec.max_reconstructions} reconstructions)"
            )
        error = ErrorValue(
            task_id=spec.task_id,
            function_name=spec.function_name,
            cause_repr=detail,
            chain=(spec.function_name,),
            kind="worker_crashed",
        )
        data = serialize(error)
        for object_id in spec.all_return_ids():
            self._store_bytes(object_id, data)
