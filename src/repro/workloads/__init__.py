"""Workloads from the paper's motivating example and evaluation.

* :mod:`repro.workloads.atari` — synthetic Atari-like environment and
  linear policy (stand-in for the ALE emulator of Section 4.2).
* :mod:`repro.workloads.rl` — the Section 4.2 training loop (parallel
  simulations alternating with GPU model fitting) implemented four ways:
  serial, Spark-like BSP, ours, and ours with ``wait`` pipelining.
* :mod:`repro.workloads.mcts` — Monte Carlo tree search with dynamic task
  spawning (Figure 2b; requirement R3).
* :mod:`repro.workloads.rnn` — heterogeneous per-layer tasks with chain
  dependencies (Figure 2c; requirements R4, R5).
* :mod:`repro.workloads.sensor_fusion` — streaming multi-sensor fusion
  (Figure 2a).
"""

from repro.workloads.atari import LinearPolicy, SyntheticAtariEnv, es_update, rollout

__all__ = ["SyntheticAtariEnv", "LinearPolicy", "rollout", "es_update"]
