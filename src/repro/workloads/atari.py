"""Synthetic Atari-like environment and evolution-strategies policy.

Section 4.2 trains "an RL agent ... to play an Atari game" where each
simulation task takes ~7 ms.  The Arcade Learning Environment is not
available offline, so this module provides the closest synthetic
equivalent exercising the same code path: a deterministic, seedable
environment with a dense observation vector, discrete actions, and a
reward that genuinely depends on the policy (so training measurably
improves it).  The learning algorithm is evolution strategies (ES) —
perturb the policy, roll out, weight perturbations by reward — which is
exactly the class of massively-parallel RL the paper cites ([16]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

OBS_DIM = 32
NUM_ACTIONS = 6


class SyntheticAtariEnv:
    """A deterministic dynamical system with game-like structure.

    The hidden state follows a fixed random linear dynamic plus an
    action-dependent push; the reward is higher when the agent picks the
    action best aligned with the current state, so a policy that reads
    the observation beats both a random and a constant policy.
    """

    def __init__(self, seed: int = 0, horizon: int = 100) -> None:
        self.horizon = horizon
        rng = np.random.default_rng(seed)
        # Fixed, seed-determined "game cartridge".
        self._dynamics = rng.standard_normal((OBS_DIM, OBS_DIM)) / np.sqrt(OBS_DIM)
        self._action_push = rng.standard_normal((NUM_ACTIONS, OBS_DIM)) * 0.1
        self._reward_dirs = rng.standard_normal((NUM_ACTIONS, OBS_DIM))
        self._initial_state = rng.standard_normal(OBS_DIM)
        self._state = self._initial_state.copy()
        self._steps = 0

    def reset(self) -> np.ndarray:
        self._state = self._initial_state.copy()
        self._steps = 0
        return self.observation()

    def observation(self) -> np.ndarray:
        return np.tanh(self._state)

    def best_action(self) -> int:
        """The oracle action (used by tests to bound achievable reward)."""
        return int(np.argmax(self._reward_dirs @ self.observation()))

    def step(self, action: int) -> tuple:
        """Apply an action; returns (observation, reward, done)."""
        if not 0 <= action < NUM_ACTIONS:
            raise ValueError(f"invalid action {action}")
        obs = self.observation()
        alignment = self._reward_dirs @ obs
        # Reward: how close the chosen action's alignment is to the best.
        reward = float(alignment[action] - alignment.max())
        self._state = self._dynamics @ self._state + self._action_push[action]
        self._state = np.clip(self._state, -5.0, 5.0)
        self._steps += 1
        return self.observation(), reward, self._steps >= self.horizon


@dataclass
class LinearPolicy:
    """Observation -> action via a linear score layer."""

    weights: np.ndarray  # (NUM_ACTIONS, OBS_DIM)

    @classmethod
    def zeros(cls) -> "LinearPolicy":
        return cls(weights=np.zeros((NUM_ACTIONS, OBS_DIM)))

    @classmethod
    def random(cls, seed: int = 0, scale: float = 0.1) -> "LinearPolicy":
        rng = np.random.default_rng(seed)
        return cls(weights=rng.standard_normal((NUM_ACTIONS, OBS_DIM)) * scale)

    def act(self, observation: np.ndarray) -> int:
        return int(np.argmax(self.weights @ observation))


def perturbation(seed: int, sigma: float) -> np.ndarray:
    """The deterministic ES perturbation for a given seed."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((NUM_ACTIONS, OBS_DIM)) * sigma


def rollout(
    weights: np.ndarray,
    perturbation_seed: int,
    sigma: float = 0.05,
    env_seed: int = 0,
    horizon: int = 50,
) -> dict:
    """One simulation task: play one episode with perturbed weights.

    This is the ~7 ms task of Section 4.2 (the modeled duration is
    attached at submission time; the body does the real compute).
    Returns the perturbation seed and total reward — all ES needs.
    """
    noisy = weights + perturbation(perturbation_seed, sigma)
    policy = LinearPolicy(weights=noisy)
    env = SyntheticAtariEnv(seed=env_seed, horizon=horizon)
    obs = env.reset()
    total_reward = 0.0
    done = False
    while not done:
        obs, reward, done = env.step(policy.act(obs))
        total_reward += reward
    return {"seed": perturbation_seed, "reward": total_reward, "steps": horizon}


def es_update(
    weights: np.ndarray,
    results: list,
    sigma: float = 0.05,
    learning_rate: float = 0.02,
) -> np.ndarray:
    """One model-fitting task: combine rollout results into new weights.

    This is the GPU task of Section 4.2 (rank-weighted ES gradient
    estimate; on real hardware it is a batched matmul on the GPU).
    """
    if not results:
        return weights.copy()
    rewards = np.array([r["reward"] for r in results])
    seeds = [r["seed"] for r in results]
    if np.std(rewards) > 1e-9:
        normalized = (rewards - rewards.mean()) / rewards.std()
    else:
        normalized = np.zeros_like(rewards)
    gradient = np.zeros_like(weights)
    for seed, advantage in zip(seeds, normalized):
        gradient += advantage * perturbation(seed, sigma)
    gradient /= len(results) * sigma
    return weights + learning_rate * gradient


def evaluate_policy(weights: np.ndarray, env_seed: int = 0, horizon: int = 50) -> float:
    """Deterministic (unperturbed) episode reward for a weight vector."""
    policy = LinearPolicy(weights=weights)
    env = SyntheticAtariEnv(seed=env_seed, horizon=horizon)
    obs = env.reset()
    total = 0.0
    done = False
    while not done:
        obs, reward, done = env.step(policy.act(obs))
        total += reward
    return total
