"""The Section 4.2 workload: RL training alternating simulations and fits.

"The workload alternates between stages in which actions are taken in
parallel simulations and actions are computed in parallel on GPUs."

Four implementations of the *same* computation (same seeds, same
sharding — serial, BSP, and ours produce bit-identical learned weights):

* :func:`run_serial` — single-threaded reference.
* :func:`run_bsp` — Spark-like BSP engine (driver-coordinated stages,
  per-task overhead, barriers; fit charged as ideally parallelized, per
  the paper's footnote 2).
* :func:`run_ours` — the proposed system through the public API
  (CPU rollout tasks + GPU fit tasks on the simulated cluster).
* :func:`run_ours_pipelined` — the paper's sketched extension: use
  ``wait`` to process simulations in completion order so fits overlap
  with the straggling rollouts ("a few extra lines of code").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

import repro
from repro.baselines.bsp import BSPConfig, BSPEngine
from repro.baselines.serial import SerialExecutor
from repro.workloads.atari import NUM_ACTIONS, OBS_DIM, es_update, evaluate_policy, rollout


@dataclass(frozen=True)
class RLConfig:
    """Parameters of the training workload."""

    iterations: int = 5
    rollouts_per_iteration: int = 64
    num_fit_shards: int = 8
    #: The paper's ~7 ms simulation task.
    rollout_duration: float = 0.007
    #: Modeled GPU model-fitting time per shard.
    fit_duration: float = 0.008
    sigma: float = 0.05
    learning_rate: float = 0.02
    horizon: int = 50
    env_seed: int = 0
    base_seed: int = 1234

    def __post_init__(self) -> None:
        if self.num_fit_shards <= 0:
            raise ValueError("num_fit_shards must be positive")
        if self.rollouts_per_iteration < self.num_fit_shards:
            raise ValueError("need at least one rollout per fit shard")

    def rollout_seeds(self, iteration: int) -> list:
        """Deterministic perturbation seeds for one iteration."""
        base = self.base_seed + iteration * self.rollouts_per_iteration
        return [base + i for i in range(self.rollouts_per_iteration)]

    def shard(self, items: list) -> list:
        """Split items into ``num_fit_shards`` contiguous chunks."""
        chunk = -(-len(items) // self.num_fit_shards)
        return [items[i : i + chunk] for i in range(0, len(items), chunk)]


@dataclass
class RLResult:
    """Outcome of one training run."""

    implementation: str
    total_time: float
    weights: np.ndarray
    reward_history: list = field(default_factory=list)
    tasks_executed: int = 0

    def final_reward(self) -> float:
        return self.reward_history[-1] if self.reward_history else float("nan")


def _combine(shard_weights: list) -> np.ndarray:
    return np.mean(np.stack(shard_weights), axis=0)


# ----------------------------------------------------------------------
# Serial (the "1x" reference)
# ----------------------------------------------------------------------


def run_serial(config: RLConfig) -> RLResult:
    executor = SerialExecutor()
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    for iteration in range(config.iterations):
        seeds = config.rollout_seeds(iteration)
        results = [
            executor.run(
                rollout, weights, seed, config.sigma, config.env_seed,
                config.horizon, duration=config.rollout_duration,
            )
            for seed in seeds
        ]
        shard_weights = [
            executor.run(
                es_update, weights, chunk, config.sigma, config.learning_rate,
                duration=config.fit_duration,
            )
            for chunk in config.shard(results)
        ]
        weights = _combine(shard_weights)
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    return RLResult(
        implementation="serial",
        total_time=executor.elapsed(),
        weights=weights,
        reward_history=history,
        tasks_executed=executor.tasks_executed,
    )


# ----------------------------------------------------------------------
# Spark-like BSP
# ----------------------------------------------------------------------


def run_bsp(config: RLConfig, bsp_config: Optional[BSPConfig] = None) -> RLResult:
    engine = BSPEngine(bsp_config)
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    for iteration in range(config.iterations):
        seeds = config.rollout_seeds(iteration)
        current = weights  # bind for the closure below
        results = engine.run_stage(
            lambda seed, w=current: rollout(
                w, seed, config.sigma, config.env_seed, config.horizon
            ),
            seeds,
            duration=config.rollout_duration,
        )
        # Footnote 2: fit charged as perfectly parallelized on Spark.
        shard_weights = engine.run_ideal_parallel(
            lambda chunk, w=current: es_update(
                w, chunk, config.sigma, config.learning_rate
            ),
            config.shard(results),
            duration=config.fit_duration,
        )
        weights = _combine(shard_weights)
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    return RLResult(
        implementation="bsp",
        total_time=engine.elapsed(),
        weights=weights,
        reward_history=history,
        tasks_executed=engine.tasks_run,
    )


# ----------------------------------------------------------------------
# Ours (through the public API; works on either backend)
# ----------------------------------------------------------------------

_rollout_task = repro.RemoteFunction(rollout, name="rollout")


def _fit_shard(weights, sigma, learning_rate, *results):
    return es_update(weights, list(results), sigma, learning_rate)


_fit_task = repro.RemoteFunction(_fit_shard, num_cpus=0, num_gpus=1, name="fit_shard")


def run_ours(config: RLConfig) -> RLResult:
    """Requires an initialized runtime (``repro.init``) with GPU nodes."""
    runtime = repro.get_runtime()
    rollout_fn = _rollout_task.options(duration=config.rollout_duration)
    fit_fn = _fit_task.options(duration=config.fit_duration)

    tasks_before = runtime.stats().get("tasks_executed", 0)
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    start = repro.now()
    for iteration in range(config.iterations):
        weights_ref = repro.put(weights)
        rollout_refs = [
            rollout_fn.remote(
                weights_ref, seed, config.sigma, config.env_seed, config.horizon
            )
            for seed in config.rollout_seeds(iteration)
        ]
        shard_refs = [
            fit_fn.remote(weights_ref, config.sigma, config.learning_rate, *chunk)
            for chunk in config.shard(rollout_refs)
        ]
        weights = _combine(repro.get(shard_refs))
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    total_time = repro.now() - start
    return RLResult(
        implementation="ours",
        total_time=total_time,
        weights=weights,
        reward_history=history,
        tasks_executed=runtime.stats().get("tasks_executed", 0) - tasks_before,
    )


def run_ours_stage_barrier(config: RLConfig) -> RLResult:
    """The workload ported BSP-style onto our API: the driver ``get``s
    *all* simulation results before submitting any fit — so one straggling
    rollout stalls every GPU.  This is the natural port of Spark code and
    the baseline the paper's ``wait`` sketch improves on (E8)."""
    runtime = repro.get_runtime()
    rollout_fn = _rollout_task.options(duration=config.rollout_duration)
    fit_fn = _fit_task.options(duration=config.fit_duration)

    tasks_before = runtime.stats().get("tasks_executed", 0)
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    start = repro.now()
    for iteration in range(config.iterations):
        weights_ref = repro.put(weights)
        rollout_refs = [
            rollout_fn.remote(
                weights_ref, seed, config.sigma, config.env_seed, config.horizon
            )
            for seed in config.rollout_seeds(iteration)
        ]
        results = repro.get(rollout_refs)  # the stage barrier
        result_refs = [repro.put(r) for r in results]
        shard_refs = [
            fit_fn.remote(weights_ref, config.sigma, config.learning_rate, *chunk)
            for chunk in config.shard(result_refs)
        ]
        weights = _combine(repro.get(shard_refs))
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    total_time = repro.now() - start
    return RLResult(
        implementation="ours-stage-barrier",
        total_time=total_time,
        weights=weights,
        reward_history=history,
        tasks_executed=runtime.stats().get("tasks_executed", 0) - tasks_before,
    )


def run_ours_as_completed(config: RLConfig) -> RLResult:
    """The pipelined workload expressed with the ``as_completed`` iterator
    instead of a hand-rolled ``wait`` loop: rollouts arrive in completion
    order and are batched into fits as they land.  Since the iterator is
    built on ``wait``, it should match :func:`run_ours_pipelined`'s
    latency — that equivalence is asserted by bench E8."""
    runtime = repro.get_runtime()
    rollout_fn = _rollout_task.options(duration=config.rollout_duration)
    fit_fn = _fit_task.options(duration=config.fit_duration)
    shard_size = -(-config.rollouts_per_iteration // config.num_fit_shards)

    tasks_before = runtime.stats().get("tasks_executed", 0)
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    start = repro.now()
    for iteration in range(config.iterations):
        weights_ref = repro.put(weights)
        rollout_refs = [
            rollout_fn.remote(
                weights_ref, seed, config.sigma, config.env_seed, config.horizon
            )
            for seed in config.rollout_seeds(iteration)
        ]
        shard_refs = []
        batch = []
        for done_ref in repro.as_completed(rollout_refs):
            batch.append(done_ref)
            if len(batch) >= shard_size:
                shard_refs.append(
                    fit_fn.remote(
                        weights_ref, config.sigma, config.learning_rate, *batch
                    )
                )
                batch = []
        if batch:
            shard_refs.append(
                fit_fn.remote(
                    weights_ref, config.sigma, config.learning_rate, *batch
                )
            )
        weights = _combine(repro.get(shard_refs))
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    total_time = repro.now() - start
    return RLResult(
        implementation="ours-as-completed",
        total_time=total_time,
        weights=weights,
        reward_history=history,
        tasks_executed=runtime.stats().get("tasks_executed", 0) - tasks_before,
    )


def run_ours_pipelined(config: RLConfig) -> RLResult:
    """The paper's ``wait`` sketch: fit each shard as soon as enough
    simulations finish, instead of barriering on the whole stage."""
    runtime = repro.get_runtime()
    rollout_fn = _rollout_task.options(duration=config.rollout_duration)
    fit_fn = _fit_task.options(duration=config.fit_duration)
    shard_size = -(-config.rollouts_per_iteration // config.num_fit_shards)

    tasks_before = runtime.stats().get("tasks_executed", 0)
    weights = np.zeros((NUM_ACTIONS, OBS_DIM))
    history = []
    start = repro.now()
    for iteration in range(config.iterations):
        weights_ref = repro.put(weights)
        pending = [
            rollout_fn.remote(
                weights_ref, seed, config.sigma, config.env_seed, config.horizon
            )
            for seed in config.rollout_seeds(iteration)
        ]
        shard_refs = []
        while pending:
            take = min(shard_size, len(pending))
            ready, pending = repro.wait(pending, num_returns=take)
            shard_refs.append(
                fit_fn.remote(
                    weights_ref, config.sigma, config.learning_rate, *ready
                )
            )
        weights = _combine(repro.get(shard_refs))
        history.append(evaluate_policy(weights, config.env_seed, config.horizon))
    total_time = repro.now() - start
    return RLResult(
        implementation="ours-pipelined",
        total_time=total_time,
        weights=weights,
        reward_history=history,
        tasks_executed=runtime.stats().get("tasks_executed", 0) - tasks_before,
    )
