"""Streaming multi-sensor fusion (Figure 2a).

"Various sensors may fuse video and LIDAR input to build multiple
candidate models of the robot's environment."  Every ``period`` seconds
each sensor produces a reading; per-sensor preprocessing tasks (with very
different costs — a camera frame is not an IMU sample: R4) feed a fusion
task per window; the driver consumes fused estimates in completion order
with ``wait``.  End-to-end window latency is the real-time metric (R1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro


@dataclass(frozen=True)
class SensorConfig:
    """Stream shape and per-sensor cost model."""

    #: One modeled preprocess duration per sensor — heterogeneous by
    #: design (camera, lidar, radar, imu).
    preprocess_durations: tuple = (0.006, 0.004, 0.002, 0.0005)
    fuse_duration: float = 0.002
    #: Sensor sampling period (seconds between windows).
    period: float = 0.02
    num_windows: int = 25
    obs_dim: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.preprocess_durations:
            raise ValueError("need at least one sensor")
        if self.period <= 0:
            raise ValueError("period must be positive")

    @property
    def num_sensors(self) -> int:
        return len(self.preprocess_durations)


def make_reading(config: SensorConfig, sensor: int, window: int) -> np.ndarray:
    """Deterministic synthetic reading: shared signal + per-sensor noise."""
    rng = np.random.default_rng(config.seed + 7919 * sensor + window)
    t = window * config.period
    signal = np.sin(t + np.arange(config.obs_dim) / config.obs_dim)
    noise = rng.standard_normal(config.obs_dim) * (0.1 * (sensor + 1))
    return signal + noise


def preprocess(reading: np.ndarray, sensor: int) -> dict:
    """Per-sensor feature extraction (really computed)."""
    kernel = np.ones(3) / 3.0
    smoothed = np.convolve(reading, kernel, mode="same")
    return {
        "sensor": sensor,
        "features": smoothed,
        "variance": float(np.var(reading - smoothed) + 0.05 * (sensor + 1)),
    }


def fuse(*feature_dicts) -> dict:
    """Inverse-variance-weighted fusion into one environment estimate."""
    if not feature_dicts:
        raise ValueError("fuse needs at least one sensor's features")
    weights = np.array([1.0 / f["variance"] for f in feature_dicts])
    weights /= weights.sum()
    stacked = np.stack([f["features"] for f in feature_dicts])
    estimate = weights @ stacked
    return {
        "estimate": estimate,
        "confidence": float(weights.max()),
        "num_sensors": len(feature_dicts),
    }


_preprocess_task = repro.RemoteFunction(preprocess, name="sensor_preprocess")
_fuse_task = repro.RemoteFunction(fuse, name="sensor_fuse")


@dataclass
class FusionResult:
    """Latency profile of one streaming run."""

    latencies: list = field(default_factory=list)  # (window, seconds)
    estimates: dict = field(default_factory=dict)  # window -> estimate dict
    elapsed: float = 0.0

    def latency_array(self) -> np.ndarray:
        return np.array([latency for _w, latency in self.latencies])

    def percentile(self, q: float) -> float:
        values = self.latency_array()
        return float(np.percentile(values, q)) if values.size else 0.0

    @property
    def mean_latency(self) -> float:
        values = self.latency_array()
        return float(values.mean()) if values.size else 0.0


def run_pipeline(config: SensorConfig) -> FusionResult:
    """Drive the streaming pipeline on the current runtime."""
    fuse_fn = _fuse_task.options(duration=config.fuse_duration)
    preprocess_fns = [
        _preprocess_task.options(duration=config.preprocess_durations[s])
        for s in range(config.num_sensors)
    ]

    start = repro.now()
    in_flight: dict = {}  # fusion ref -> (window, submit_time)
    result = FusionResult()

    def harvest(ready) -> None:
        for ref in ready:
            window, submitted = in_flight.pop(ref)
            result.latencies.append((window, repro.now() - submitted))
            result.estimates[window] = repro.get(ref)

    for window in range(config.num_windows):
        arrival = start + window * config.period
        # Until the next window arrives, harvest fusions the moment they
        # complete (wait with a deadline) so recorded latencies reflect
        # completion time, not polling time.
        while repro.now() < arrival:
            if not in_flight:
                repro.sleep(arrival - repro.now())
                break
            ready, _pending = repro.wait(
                list(in_flight.keys()),
                num_returns=1,
                timeout=arrival - repro.now(),
            )
            harvest(ready)
        feature_refs = [
            preprocess_fns[sensor].remote(
                make_reading(config, sensor, window), sensor
            )
            for sensor in range(config.num_sensors)
        ]
        in_flight[fuse_fn.remote(*feature_refs)] = (window, repro.now())

    while in_flight:
        ready, _pending = repro.wait(list(in_flight.keys()), num_returns=1)
        harvest(ready)
    result.elapsed = repro.now() - start
    result.latencies.sort(key=lambda pair: pair[0])
    return result


def reference_estimates(config: SensorConfig) -> dict:
    """Ground-truth fusion computed inline (for correctness tests)."""
    estimates = {}
    for window in range(config.num_windows):
        features = [
            preprocess(make_reading(config, sensor, window), sensor)
            for sensor in range(config.num_sensors)
        ]
        estimates[window] = fuse(*features)
    return estimates
