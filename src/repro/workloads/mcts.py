"""Monte Carlo tree search with dynamic task creation (Figure 2b, R3).

"RL primitives such as Monte Carlo tree search may generate new tasks
during execution based on the results or the durations of other tasks."

The search explores action sequences of the synthetic game: an ``expand``
task simulates every child of a node, inspects the returned values, and —
*based on those results* — spawns further ``expand`` tasks only under the
most promising children.  The task graph therefore cannot be declared
upfront: it is literally a function of execution-time values, which is
exactly the capability static dataflow systems (Section 5) lack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.baselines.serial import SerialExecutor
from repro.workloads.atari import NUM_ACTIONS, LinearPolicy, SyntheticAtariEnv


@dataclass(frozen=True)
class MCTSConfig:
    """Search shape and cost model."""

    #: Actions considered per node (<= NUM_ACTIONS).
    branching: int = 4
    #: Tree depth of adaptive expansion.
    depth: int = 3
    #: How many children of each node get expanded further.
    expand_width: int = 2
    #: Modeled duration of one simulation task (the paper's ~7 ms scale).
    simulation_duration: float = 0.007
    #: Rollout horizon after the action prefix is applied.
    horizon: int = 30
    env_seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.branching <= NUM_ACTIONS:
            raise ValueError(f"branching must be in [1, {NUM_ACTIONS}]")
        if self.expand_width > self.branching:
            raise ValueError("expand_width cannot exceed branching")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")


@dataclass
class MCTSResult:
    """Outcome of one search."""

    best_sequence: tuple
    best_value: float
    simulations: int
    elapsed: float
    implementation: str
    values_by_depth: dict = field(default_factory=dict)


def simulate_sequence(
    sequence: tuple, env_seed: int = 0, horizon: int = 30
) -> float:
    """One simulation task: apply an action prefix, then a greedy rollout."""
    env = SyntheticAtariEnv(seed=env_seed, horizon=len(sequence) + horizon)
    obs = env.reset()
    total = 0.0
    for action in sequence:
        obs, reward, done = env.step(int(action))
        total += reward
        if done:
            return total
    # Greedy completion with a fixed probe policy (deterministic).
    policy = LinearPolicy.random(seed=env_seed + 1, scale=0.5)
    done = False
    steps = 0
    while not done and steps < horizon:
        obs, reward, done = env.step(policy.act(obs))
        total += reward
        steps += 1
    return total


_simulate_task = repro.RemoteFunction(simulate_sequence, name="mcts_simulate")


def _make_expand_task(config: MCTSConfig):
    """Build the recursive expand task bound to one configuration."""
    simulate = _simulate_task.options(duration=config.simulation_duration)

    def expand(sequence, depth_remaining):
        # Dynamic fan-out: children are simulated...
        children = [tuple(sequence) + (a,) for a in range(config.branching)]
        child_refs = [
            simulate.remote(child, config.env_seed, config.horizon)
            for child in children
        ]
        values = yield repro.Get(child_refs)
        count = len(children)
        best_seq, best_val = max(zip(children, values), key=lambda cv: cv[1])
        if depth_remaining > 1:
            # ...and only the promising ones spawn more work (the task
            # graph depends on task *results*: requirement R3).
            ranked = sorted(
                zip(children, values), key=lambda cv: cv[1], reverse=True
            )
            promising = [child for child, _value in ranked[: config.expand_width]]
            sub_refs = [
                expand_task.remote(child, depth_remaining - 1)
                for child in promising
            ]
            sub_results = yield repro.Get(sub_refs)
            for sub in sub_results:
                count += sub["simulations"]
                if sub["best_value"] > best_val:
                    best_seq, best_val = tuple(sub["best_sequence"]), sub["best_value"]
        return {
            "best_sequence": best_seq,
            "best_value": best_val,
            "simulations": count,
        }

    expand_task = repro.remote(expand)
    return expand_task


def run_mcts(config: MCTSConfig) -> MCTSResult:
    """Run the search on the current runtime (sim or local backend)."""
    expand_task = _make_expand_task(config)
    start = repro.now()
    result = repro.get(expand_task.remote((), config.depth))
    elapsed = repro.now() - start
    return MCTSResult(
        best_sequence=tuple(result["best_sequence"]),
        best_value=result["best_value"],
        simulations=result["simulations"],
        elapsed=elapsed,
        implementation="ours",
    )


def run_mcts_serial(config: MCTSConfig) -> MCTSResult:
    """Identical exploration, single-threaded (the bench baseline)."""
    executor = SerialExecutor()

    def expand(sequence: tuple, depth_remaining: int) -> dict:
        children = [sequence + (a,) for a in range(config.branching)]
        values = [
            executor.run(
                simulate_sequence, child, config.env_seed, config.horizon,
                duration=config.simulation_duration,
            )
            for child in children
        ]
        count = len(children)
        best_seq, best_val = max(zip(children, values), key=lambda cv: cv[1])
        if depth_remaining > 1:
            ranked = sorted(zip(children, values), key=lambda cv: cv[1], reverse=True)
            for child, _value in ranked[: config.expand_width]:
                sub = expand(child, depth_remaining - 1)
                count += sub["simulations"]
                if sub["best_value"] > best_val:
                    best_seq, best_val = sub["best_sequence"], sub["best_value"]
        return {
            "best_sequence": best_seq,
            "best_value": best_val,
            "simulations": count,
        }

    result = expand((), config.depth)
    return MCTSResult(
        best_sequence=tuple(result["best_sequence"]),
        best_value=result["best_value"],
        simulations=result["simulations"],
        elapsed=executor.elapsed(),
        implementation="serial",
    )


def expected_simulations(config: MCTSConfig) -> int:
    """Closed-form count of simulation tasks the search performs."""
    total = 0
    nodes_at_depth = 1
    for _level in range(config.depth):
        total += nodes_at_depth * config.branching
        nodes_at_depth *= config.expand_width
    return total
