"""Adaptive hyperparameter search over nested RL training (Section 4.2).

"...or run the entire workload nested within a larger adaptive
hyperparameter search.  These changes are all straightforward using the
API described in Section 3.1 and involve a few extra lines of code."

Each *trial* is itself a task that spawns its own simulation tasks (task
creating tasks, R3) and trains an ES policy for some iterations.  The
search runs successive halving: every rung runs the surviving configs in
parallel, harvests them in completion order with ``wait``, then promotes
the best half with a doubled iteration budget, warm-starting from their
learned weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro
from repro.workloads.atari import (
    NUM_ACTIONS,
    OBS_DIM,
    es_update,
    evaluate_policy,
    rollout,
)

_rollout_task = repro.RemoteFunction(rollout, name="hp_rollout")


@dataclass(frozen=True)
class HPSearchConfig:
    """Successive-halving search space and budgets."""

    #: (learning_rate, sigma) candidates; defaults span two decades.
    candidates: tuple = (
        (0.002, 0.02), (0.002, 0.1), (0.01, 0.02), (0.01, 0.1),
        (0.05, 0.02), (0.05, 0.1), (0.2, 0.02), (0.2, 0.1),
    )
    #: ES iterations granted at the first rung; doubles per rung.
    base_iterations: int = 2
    #: Number of halving rungs.
    num_rungs: int = 3
    rollouts_per_iteration: int = 16
    rollout_duration: float = 0.007
    horizon: int = 40
    env_seed: int = 0
    base_seed: int = 7000

    def __post_init__(self) -> None:
        if len(self.candidates) < 2:
            raise ValueError("need at least two candidate configs")
        if self.num_rungs < 1:
            raise ValueError("num_rungs must be >= 1")
        if self.base_iterations < 1:
            raise ValueError("base_iterations must be >= 1")

    def rung_iterations(self, rung: int) -> int:
        return self.base_iterations * (2 ** rung)

    def survivors_at(self, rung: int) -> int:
        """How many trials run at a given rung (halved per rung, >= 1)."""
        return max(1, len(self.candidates) // (2 ** rung))


@dataclass
class TrialOutcome:
    learning_rate: float
    sigma: float
    reward: float
    iterations_used: int
    weights: np.ndarray


@dataclass
class SearchResult:
    best: TrialOutcome
    trials_run: int
    total_task_iterations: int
    elapsed: float
    rung_history: list = field(default_factory=list)


def _make_trial_task(config: HPSearchConfig):
    """Build the trial task: a generator body spawning nested rollouts."""
    rollout_fn = _rollout_task.options(duration=config.rollout_duration)

    def hp_trial(learning_rate, sigma, weights, iterations, trial_index):
        if weights is None:
            weights = np.zeros((NUM_ACTIONS, OBS_DIM))
        for iteration in range(iterations):
            base = (
                config.base_seed
                + trial_index * 100_000
                + iteration * config.rollouts_per_iteration
            )
            refs = [
                rollout_fn.remote(
                    weights, base + i, sigma, config.env_seed, config.horizon
                )
                for i in range(config.rollouts_per_iteration)
            ]
            results = yield repro.Get(refs)
            weights = es_update(
                weights, results, sigma=sigma, learning_rate=learning_rate
            )
        reward = evaluate_policy(weights, config.env_seed, config.horizon)
        return {
            "learning_rate": learning_rate,
            "sigma": sigma,
            "reward": reward,
            "iterations": iterations,
            "weights": weights,
        }

    return repro.remote(hp_trial)


def run_search(config: HPSearchConfig) -> SearchResult:
    """Run the adaptive search on the current runtime."""
    trial_task = _make_trial_task(config)

    survivors = [
        TrialOutcome(
            learning_rate=lr, sigma=sigma, reward=float("-inf"),
            iterations_used=0, weights=None,
        )
        for lr, sigma in config.candidates
    ]
    trials_run = 0
    total_iterations = 0
    rung_history = []
    start = repro.now()

    for rung in range(config.num_rungs):
        iterations = config.rung_iterations(rung)
        keep = config.survivors_at(rung)
        survivors = survivors[:keep]
        pending = {}
        for index, trial in enumerate(survivors):
            ref = trial_task.remote(
                trial.learning_rate, trial.sigma, trial.weights,
                iterations, trials_run + index,
            )
            pending[ref] = trial
        trials_run += len(pending)
        total_iterations += iterations * len(pending)

        # Harvest in completion order (the paper's wait primitive): the
        # search reacts to results as they land rather than barriering.
        outcomes = []
        remaining = list(pending.keys())
        while remaining:
            ready, remaining = repro.wait(remaining, num_returns=1)
            for ref in ready:
                outcome = repro.get(ref)
                outcomes.append(
                    TrialOutcome(
                        learning_rate=outcome["learning_rate"],
                        sigma=outcome["sigma"],
                        reward=outcome["reward"],
                        iterations_used=outcome["iterations"],
                        weights=outcome["weights"],
                    )
                )
        outcomes.sort(key=lambda t: t.reward, reverse=True)
        rung_history.append(
            {
                "rung": rung,
                "iterations": iterations,
                "rewards": [round(t.reward, 3) for t in outcomes],
            }
        )
        survivors = outcomes

    return SearchResult(
        best=survivors[0],
        trials_run=trials_run,
        total_task_iterations=total_iterations,
        elapsed=repro.now() - start,
        rung_history=rung_history,
    )


def exhaustive_budget(config: HPSearchConfig) -> int:
    """Trial-iterations a non-adaptive grid search needs.

    A full-budget trial accumulates every rung's iterations (the adaptive
    search warm-starts each rung from the previous one), so grid search
    pays ``base * (2^rungs - 1)`` iterations for *every* candidate.
    """
    per_trial = config.base_iterations * (2 ** config.num_rungs - 1)
    return len(config.candidates) * per_trial
