"""The worker-tier queue of the two-level scheduling plane.

One :class:`LocalTaskQueue` per worker, used in two places at once:

* **inside the worker** (``proc`` child process / ``local`` thread) as
  the authoritative run queue the fast path appends to and the worker
  pops from the head of;
* **on the driver** as the *mirror* of each proc worker's queue, built
  from SUBMIT_LOCAL notices — the state that makes stolen and crashed
  tasks recoverable without asking a (possibly dead) worker.

The double life imposes the ownership discipline the steal protocol
relies on: only the queue's owner ever pops the head (so a task the
owner keeps is run exactly once by it), and only the owner grants steals
from the tail (so a task it gives away is provably not also run
locally).  The mirror never decides anything by itself; it is updated in
pipe order by the owner's notices, grants, and results.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional


class LocalTaskQueue:
    """An ordered task queue with head-pop, tail-steal, and removal.

    Entries are ``(task_id, item)`` pairs; ``item`` is whatever the
    owner runs (a payload dict in the proc worker, a TaskSpec in the
    local runtime and in the driver-side mirrors).  All operations are
    O(1) amortized; the class is unsynchronized — owners are
    single-threaded, mirrors are touched under the runtime lock.
    """

    def __init__(self) -> None:
        self._items: dict[Any, Any] = {}  # insertion-ordered (py3.7+)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, task_id: Any) -> bool:
        return task_id in self._items

    def push(self, task_id: Any, item: Any) -> None:
        if task_id in self._items:
            raise ValueError(f"task {task_id} is already queued")
        self._items[task_id] = item

    def pop_head(self) -> Optional[tuple]:
        """The next task to run, oldest first (owner only)."""
        for task_id in self._items:
            return task_id, self._items.pop(task_id)
        return None

    def steal_tail(self, max_count: int) -> list:
        """Give away up to ``max_count`` of the *newest* tasks (owner
        only).  Stealing from the tail keeps the oldest work — the work
        most likely to have dependents waiting — on the worker whose
        cache already holds its arguments."""
        if max_count <= 0:
            return []
        grabbed = []
        for task_id in reversed(list(self._items)):
            if len(grabbed) >= max_count:
                break
            grabbed.append((task_id, self._items.pop(task_id)))
        grabbed.reverse()  # preserve submission order at the new home
        return grabbed

    def remove(self, task_id: Any) -> Optional[Any]:
        """Drop one task by id (cancellation, mirror sync on grant/done);
        returns its item, or None if it was not queued."""
        return self._items.pop(task_id, None)

    def drain(self) -> list:
        """Remove and return everything, oldest first (crash re-homing)."""
        drained = list(self._items.items())
        self._items.clear()
        return drained

    def task_ids(self) -> Iterable[Any]:
        return tuple(self._items)
