"""The real (non-simulated) two-level scheduling plane (Section 3.2.2).

The paper's hybrid bottom-up scheduler exists twice in this repo: once as
a *model* inside the virtual-time simulator (:mod:`repro.scheduling`) and
— since this package — once as a *mechanism* shared by the backends that
execute on real hardware (``local`` threads, ``proc`` processes).  Both
runtimes assemble the same parts into the same two tiers:

* **Worker tier** — every worker owns a :class:`LocalTaskQueue`.  Work
  born on a worker whose dependencies are already resident there is
  enqueued *to the worker itself* with zero driver round-trips (the
  bottom-up fast path); the driver learns about it asynchronously, for
  lineage only.
* **Driver tier** — everything else (driver-born work, worker spillover,
  crash re-homing) is placed by the driver through the *same* pluggable
  policies the simulator ablates (:class:`~repro.scheduling.policies.
  SpilloverPolicy`, :class:`~repro.scheduling.policies.PlacementPolicy`),
  with locality scores computed from a :class:`ResidencyTracker` of which
  worker already holds which argument bytes.
* **Work stealing** — idle workers pull from the tails of busy workers'
  queues (:class:`~repro.scheduling.policies.StealPolicy`), so a fan-out
  kept local by the fast path still spreads across the pool.

Every placement decision is counted in a :class:`SchedCounters` surfaced
through ``runtime.stats()["sched"]``, which is what the scheduler
ablation benchmarks assert against.
"""

from repro.sched_plane.counters import SchedCounters
from repro.sched_plane.placement import (
    ResidencyTracker,
    WorkerCandidate,
    plan_placement,
    spread_replicas,
)
from repro.sched_plane.queues import LocalTaskQueue

__all__ = [
    "LocalTaskQueue",
    "SchedCounters",
    "ResidencyTracker",
    "WorkerCandidate",
    "plan_placement",
    "spread_replicas",
]
