"""Scheduling-plane counters (the ``stats()["sched"]`` surface).

Same shape as :class:`~repro.utils.serialization.ByteAccountant`: a tiny
mutable record the runtime mutates under its own lock and snapshots into
``stats()``.  The four headline counters are the observables the paper's
scheduling story predicts — most work placed locally, a bounded spill
stream, and steals only when the pool is imbalanced — and the scheduler
ablation benchmarks assert on exactly these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SchedCounters:
    """Where tasks were placed, and by whom.

    ``tasks_placed_local``
        Worker-born tasks the bottom-up fast path kept on their birth
        worker: zero driver round-trips, acked asynchronously for
        lineage.
    ``tasks_spilled``
        Worker-born tasks that had to go through the driver tier instead
        (unresolved dependencies, resource misfit, placement hint, or a
        local backlog past the spillover threshold).
    ``tasks_placed_global``
        Placements decided by the driver tier's policy (driver-born
        work, spillover, crash re-homing).
    ``tasks_stolen``
        Tasks moved from one worker's queue to another by work stealing
        (both driver-side queue raids and the wire steal protocol).
    ``placement_locality_hits``
        Driver-tier placements where the chosen worker already held at
        least one of the task's argument objects.
    """

    tasks_placed_local: int = 0
    tasks_spilled: int = 0
    tasks_placed_global: int = 0
    tasks_stolen: int = 0
    placement_locality_hits: int = 0

    def snapshot(self) -> dict:
        return {
            "tasks_placed_local": self.tasks_placed_local,
            "tasks_spilled": self.tasks_spilled,
            "tasks_placed_global": self.tasks_placed_global,
            "tasks_stolen": self.tasks_stolen,
            "placement_locality_hits": self.placement_locality_hits,
        }
