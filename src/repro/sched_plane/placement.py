"""Driver-tier placement: residency-aware worker choice.

The driver tier of the scheduling plane places a task the same way the
simulated global scheduler does — by scoring candidates through a
:class:`~repro.scheduling.policies.PlacementPolicy` — but its locality
signal comes from real residency instead of modeled transfers: the
:class:`ResidencyTracker` records which worker already holds which
object bytes (its argument cache, or a shared-memory descriptor it has
attached), so placement can prefer the worker where the task's inputs
already live and skip a fetch.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.scheduling.policies import PlacementCandidate, PlacementPolicy
from repro.sched_plane.counters import SchedCounters

#: Residency entries remembered per worker.  Workers' caches are LRU
#: byte-budgeted, so the tracker is an approximation either way; a cap
#: keeps the driver-side index bounded no matter how many objects flow.
DEFAULT_RESIDENCY_CAP = 4096


class ResidencyTracker:
    """Which worker holds (a copy of) which object, and how big it is.

    Purely advisory: a stale entry costs one refetch on the worker, never
    correctness, so eviction on the worker side is not mirrored — the
    tracker just forgets oldest-first past ``cap`` entries per worker.
    """

    def __init__(self, cap: int = DEFAULT_RESIDENCY_CAP) -> None:
        self._cap = cap
        self._held: dict[Any, dict[Any, int]] = {}  # holder -> {object: size}

    def record(self, holder: Any, object_id: Any, size: int) -> None:
        held = self._held.setdefault(holder, {})
        held.pop(object_id, None)  # re-insert at the fresh end
        held[object_id] = size
        while len(held) > self._cap:
            held.pop(next(iter(held)))

    def forget_holder(self, holder: Any) -> None:
        """A worker died or was replaced: nothing is resident there."""
        self._held.pop(holder, None)

    def holds(self, holder: Any, object_id: Any) -> bool:
        return object_id in self._held.get(holder, ())

    def locality_bytes(
        self, holder: Any, object_ids: Iterable[Any], max_lookups: int
    ) -> int:
        """Bytes of ``object_ids`` resident at ``holder`` (capped scan)."""
        held = self._held.get(holder)
        if not held:
            return 0
        total = 0
        for count, object_id in enumerate(object_ids):
            if count >= max_lookups:
                break
            total += held.get(object_id, 0)
        return total


class WorkerCandidate(PlacementCandidate):
    """Alias making call sites read as worker-tier placement (the shape
    is exactly the sim global scheduler's candidate record)."""


def plan_placement(
    spec: Any,
    candidates: list,
    policy: PlacementPolicy,
    counters: Optional[SchedCounters] = None,
):
    """Choose a worker for one driver-tier placement (or None to queue).

    Thin shared wrapper over :meth:`PlacementPolicy.choose` so every real
    backend scores identically *and* counts identically: a successful
    choice increments ``tasks_placed_global``, and
    ``placement_locality_hits`` when the chosen worker already held some
    of the task's argument bytes.
    """
    chosen = policy.choose(spec, candidates)
    if chosen is None or counters is None:
        return chosen
    counters.tasks_placed_global += 1
    for candidate in candidates:
        if candidate.node_id == chosen and candidate.locality_bytes > 0:
            counters.placement_locality_hits += 1
            break
    return chosen


def spread_replicas(targets: list, size: int) -> list:
    """Placement hints spreading ``size`` pool replicas across ``targets``.

    The serving plane's ActorPool wants its replicas on distinct
    workers/nodes so one crash takes out one replica, not the pool —
    round-robin over the live targets gives that whenever
    ``size <= len(targets)`` and degrades to even stacking otherwise.
    With no targets at all (a backend that does not expose them) every
    hint is ``None`` and the runtime's own actor placement decides.
    """
    if not targets:
        return [None] * size
    return [targets[i % len(targets)] for i in range(size)]
