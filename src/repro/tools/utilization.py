"""Cluster utilization profiles from the event log (R7).

Bins task-execution spans into fixed time windows to produce per-node
busy-fraction series — the data behind the "are my GPUs idle during
simulation stages?" question that motivates pipelining (E8), and an
ASCII Gantt renderer for terminal-side debugging of Figure 2-style
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.store.event_log import EventLog
from repro.tools.timeline import TaskSpan, task_spans


@dataclass
class UtilizationProfile:
    """Busy fractions per node over uniform time bins."""

    bin_edges: np.ndarray            # (num_bins + 1,)
    #: node name -> busy worker-seconds per bin, normalized by bin width.
    per_node: dict

    @property
    def num_bins(self) -> int:
        return len(self.bin_edges) - 1

    def mean_utilization(self, node: str) -> float:
        series = self.per_node.get(node)
        return float(np.mean(series)) if series is not None else 0.0

    def cluster_series(self) -> np.ndarray:
        """Total busy worker-count per bin, summed over nodes."""
        if not self.per_node:
            return np.zeros(self.num_bins)
        return np.sum(np.stack(list(self.per_node.values())), axis=0)


def utilization(event_log: EventLog, num_bins: int = 50) -> UtilizationProfile:
    """Compute per-node busy-worker time series from execution spans."""
    if num_bins <= 0:
        raise ValueError(f"num_bins must be positive, got {num_bins}")
    spans = task_spans(event_log)
    if not spans:
        return UtilizationProfile(bin_edges=np.linspace(0, 1, num_bins + 1),
                                  per_node={})
    end = max(span.end for span in spans)
    start = min(span.start for span in spans)
    if end <= start:
        end = start + 1e-9
    edges = np.linspace(start, end, num_bins + 1)
    width = edges[1] - edges[0]

    per_node: dict[str, np.ndarray] = {}
    for span in spans:
        series = per_node.setdefault(span.node, np.zeros(num_bins))
        first = int(np.searchsorted(edges, span.start, side="right")) - 1
        last = int(np.searchsorted(edges, span.end, side="left")) - 1
        for index in range(max(first, 0), min(last, num_bins - 1) + 1):
            overlap = min(span.end, edges[index + 1]) - max(span.start, edges[index])
            if overlap > 0:
                series[index] += overlap / width
    return UtilizationProfile(bin_edges=edges, per_node=per_node)


def render_gantt(
    event_log: EventLog,
    width: int = 80,
    max_rows: int = 40,
) -> str:
    """ASCII Gantt chart: one row per worker, one glyph per time slice.

    Different functions get different letters (a, b, c, ...), so the
    heterogeneous task shapes of Figure 2 are visible in a terminal.
    """
    spans = task_spans(event_log)
    if not spans:
        return "(no task executions recorded)"
    start = min(s.start for s in spans)
    end = max(s.end for s in spans)
    scale = (end - start) / width if end > start else 1.0

    functions = sorted({s.function for s in spans})
    glyphs = {name: chr(ord("a") + i % 26) for i, name in enumerate(functions)}

    by_worker: dict[str, list[TaskSpan]] = {}
    for span in spans:
        by_worker.setdefault(f"{span.node}/{span.worker}", []).append(span)

    lines = [f"gantt: {len(spans)} tasks over {end - start:.4f}s "
             f"({scale * 1e3:.2f} ms/column)"]
    for name, glyph in glyphs.items():
        lines.append(f"  {glyph} = {name}")
    for worker_key in sorted(by_worker)[:max_rows]:
        row = [" "] * width
        for span in by_worker[worker_key]:
            lo = int((span.start - start) / scale) if scale else 0
            hi = int((span.end - start) / scale) if scale else 0
            for col in range(max(lo, 0), min(max(hi, lo + 1), width)):
                row[col] = glyphs[span.function].upper() if span.failed else glyphs[span.function]
        lines.append(f"{worker_key[-20:]:>22} |{''.join(row)}|")
    if len(by_worker) > max_rows:
        lines.append(f"... ({len(by_worker) - max_rows} more workers)")
    return "\n".join(lines)
