"""Per-function execution statistics from the event log."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.store.event_log import EventLog
from repro.tools.timeline import task_spans


@dataclass
class FunctionStats:
    """Aggregate execution profile for one remote function."""

    name: str
    durations: list = field(default_factory=list)
    failures: int = 0
    nodes: dict = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.durations)

    @property
    def total_time(self) -> float:
        return float(sum(self.durations))

    @property
    def mean(self) -> float:
        return self.total_time / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        if not self.durations:
            return 0.0
        return float(np.percentile(np.asarray(self.durations), q))


class TaskProfiler:
    """Builds per-function profiles; the paper's "profiling tools" box."""

    def __init__(self, event_log: EventLog) -> None:
        self.event_log = event_log

    def profile(self) -> dict:
        """Return {function name -> FunctionStats}."""
        stats: dict[str, FunctionStats] = {}
        for span in task_spans(self.event_log):
            entry = stats.setdefault(span.function, FunctionStats(name=span.function))
            entry.durations.append(span.duration)
            entry.nodes[span.node] = entry.nodes.get(span.node, 0) + 1
            if span.failed:
                entry.failures += 1
        return stats

    def report(self) -> str:
        """Human-readable profile table."""
        stats = self.profile()
        if not stats:
            return "no task executions recorded"
        lines = [
            f"{'function':<24} {'count':>6} {'mean(ms)':>9} {'p50(ms)':>9} "
            f"{'p95(ms)':>9} {'total(s)':>9} {'fail':>5}"
        ]
        for name in sorted(stats):
            s = stats[name]
            lines.append(
                f"{name:<24} {s.count:>6} {s.mean * 1e3:>9.3f} "
                f"{s.percentile(50) * 1e3:>9.3f} {s.percentile(95) * 1e3:>9.3f} "
                f"{s.total_time:>9.3f} {s.failures:>5}"
            )
        return "\n".join(lines)
