"""Error diagnosis: trace a TaskError back through control-plane state.

Because every submission, state transition, and failure is in the task
table and event log, a raised :class:`~repro.errors.TaskError` can be
expanded post-hoc into the full story of the failing task — which node ran
it, how many attempts it made, what it depended on — without re-running
anything (R7).

The lookups go through the uniform shard API: live backends expose the
real :class:`~repro.gcs.ControlStore` (``runtime._control``), the sim
keeps its modeled :class:`~repro.store.control_plane.ControlPlane` —
both answer the same entry shapes (shared dataclasses in
:mod:`repro.gcs.tables`).
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.errors import TaskError


def lookup_task(runtime, task_id):
    """Task-table entry for ``task_id`` on any backend (None if unknown)."""
    store = getattr(runtime, "_control", None)
    if store is not None:
        return store.task_get(task_id)
    plane = getattr(runtime, "control_plane", None)
    if plane is not None:
        return plane.debug_task(task_id)
    return None


def lookup_object(runtime, object_id):
    """Object-table entry for ``object_id`` on any backend (None if unknown)."""
    store = getattr(runtime, "_control", None)
    if store is not None:
        return store.object_get(object_id)
    plane = getattr(runtime, "control_plane", None)
    if plane is not None:
        return plane.debug_object(object_id)
    return None


def task_events(runtime, task_id) -> list:
    """Event-log records about ``task_id``, oldest first, any backend."""
    store = getattr(runtime, "_control", None)
    if store is not None:
        key = str(task_id)
        return [r for r in store.events() if r.get("key") == key]
    log = getattr(runtime, "event_log", None)
    if log is not None:
        return log.filter(
            predicate=lambda r: str(r.get("task_id")) == str(task_id)
        )
    return []


def debug_task(runtime, task_id):
    """Deprecated: use :func:`lookup_task` (reads the shard API)."""
    warnings.warn(
        "repro.tools.diagnosis.debug_task is deprecated; use lookup_task(), "
        "which reads through the sharded control-store API on every backend",
        DeprecationWarning,
        stacklevel=2,
    )
    return lookup_task(runtime, task_id)


def debug_object(runtime, object_id):
    """Deprecated: use :func:`lookup_object` (reads the shard API)."""
    warnings.warn(
        "repro.tools.diagnosis.debug_object is deprecated; use "
        "lookup_object(), which reads through the sharded control-store API "
        "on every backend",
        DeprecationWarning,
        stacklevel=2,
    )
    return lookup_object(runtime, object_id)


def diagnose(error: TaskError, runtime) -> str:
    """Build a human-readable report for a task failure."""
    lines = [
        f"TaskError in {error.function_name!r} (task {error.task_id})",
        f"  cause: {error.cause_repr}",
    ]
    entry = lookup_task(runtime, error.task_id)
    if entry is not None:
        lines.append(f"  final state: {entry.state} after {entry.attempts} attempt(s)")
        if entry.node is not None:
            lines.append(f"  last node: {entry.node}")
        if entry.timestamps:
            history = ", ".join(
                f"{state}@{ts:.6f}" for state, ts in sorted(
                    entry.timestamps.items(), key=lambda kv: kv[1]
                )
            )
            lines.append(f"  lifecycle: {history}")
        spec = entry.spec
        if isinstance(spec, dict):  # worker-born: {"spec": ..., "payload": ...}
            spec = spec.get("spec")
        if spec is not None:
            deps = spec.dependencies()
            lines.append(f"  dependencies: {len(deps)}")
            for dep in deps:
                obj = lookup_object(runtime, dep)
                if obj is None:
                    lines.append(f"    {dep}: unknown")
                else:
                    lines.append(
                        f"    {dep}: ready={obj.ready} "
                        f"locations={len(obj.locations)} "
                        f"producer={obj.producer_task}"
                    )
    events = task_events(runtime, error.task_id)
    if events:
        lines.append("  events:")
        for record in events:
            lines.append(f"    t={record.timestamp:.6f} {record.kind}")
    if error.traceback_text:
        lines.append("  remote traceback:")
        for tb_line in error.traceback_text.rstrip().splitlines():
            lines.append(f"    {tb_line}")
    return "\n".join(lines)
