"""Error diagnosis: trace a TaskError back through control-plane state.

Because every submission, state transition, and failure is in the task
table and event log, a raised :class:`~repro.errors.TaskError` can be
expanded post-hoc into the full story of the failing task — which node ran
it, how many attempts it made, what it depended on — without re-running
anything (R7).
"""

from __future__ import annotations

from repro.errors import TaskError


def diagnose(error: TaskError, runtime) -> str:
    """Build a human-readable report for a task failure."""
    lines = [
        f"TaskError in {error.function_name!r} (task {error.task_id})",
        f"  cause: {error.cause_repr}",
    ]
    entry = runtime.control_plane.debug_task(error.task_id)
    if entry is not None:
        lines.append(f"  final state: {entry.state} after {entry.attempts} attempt(s)")
        if entry.node is not None:
            lines.append(f"  last node: {entry.node}")
        if entry.timestamps:
            history = ", ".join(
                f"{state}@{ts:.6f}" for state, ts in sorted(
                    entry.timestamps.items(), key=lambda kv: kv[1]
                )
            )
            lines.append(f"  lifecycle: {history}")
        if entry.spec is not None:
            deps = entry.spec.dependencies()
            lines.append(f"  dependencies: {len(deps)}")
            for dep in deps:
                obj = runtime.control_plane.debug_object(dep)
                if obj is None:
                    lines.append(f"    {dep}: unknown")
                else:
                    lines.append(
                        f"    {dep}: ready={obj.ready} "
                        f"locations={len(obj.locations)} "
                        f"producer={obj.producer_task}"
                    )
    events = runtime.event_log.filter(
        predicate=lambda r: str(r.get("task_id")) == str(error.task_id)
    )
    if events:
        lines.append("  events:")
        for record in events:
            lines.append(f"    t={record.timestamp:.6f} {record.kind}")
    if error.traceback_text:
        lines.append("  remote traceback:")
        for tb_line in error.traceback_text.rstrip().splitlines():
            lines.append(f"    {tb_line}")
    return "\n".join(lines)
