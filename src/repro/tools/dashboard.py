"""Textual cluster-state dashboard (the prototype's web UI, in ASCII)."""

from __future__ import annotations


class ClusterDashboard:
    """Snapshot view over a :class:`~repro.core.runtime.SimRuntime`."""

    def __init__(self, runtime) -> None:
        self.runtime = runtime

    def node_rows(self) -> list:
        """One dict per node: liveness, utilization, queues, store usage."""
        rows = []
        for node_id in self.runtime.node_ids:
            scheduler = self.runtime.local_scheduler(node_id)
            store = self.runtime.object_store(node_id)
            rows.append(
                {
                    "node": str(node_id),
                    "alive": self.runtime.node_alive(node_id),
                    "busy_workers": scheduler.busy_workers(),
                    "num_workers": len(scheduler.workers),
                    "cpus": f"{scheduler.num_cpus - scheduler.available_cpus}"
                            f"/{scheduler.num_cpus}",
                    "gpus": f"{scheduler.num_gpus - scheduler.available_gpus}"
                            f"/{scheduler.num_gpus}",
                    "queued": len(scheduler.runnable),
                    "waiting": len(scheduler.deps),
                    "executed": scheduler.tasks_executed,
                    "spilled": scheduler.tasks_spilled,
                    "store_objects": store.num_objects,
                    "store_used_mb": store.used_bytes / 1e6,
                }
            )
        return rows

    def render(self) -> str:
        """The whole dashboard as text."""
        runtime = self.runtime
        lines = [
            f"cluster @ t={runtime.sim.now:.6f}s  "
            f"nodes={len(runtime.node_ids)} "
            f"(alive={len(runtime.alive_nodes)})",
            f"{'node':<16} {'alive':>5} {'cpu':>7} {'gpu':>5} {'run':>4} "
            f"{'queue':>5} {'wait':>5} {'done':>7} {'spill':>6} "
            f"{'objs':>6} {'MB':>8}",
        ]
        for row in self.node_rows():
            lines.append(
                f"{row['node']:<16} {str(row['alive']):>5} {row['cpus']:>7} "
                f"{row['gpus']:>5} {row['busy_workers']:>4} {row['queued']:>5} "
                f"{row['waiting']:>5} {row['executed']:>7} {row['spilled']:>6} "
                f"{row['store_objects']:>6} {row['store_used_mb']:>8.2f}"
            )
        stats = runtime.stats()
        lines.append(
            f"control plane: {stats['gcs_ops']} ops over "
            f"{len(stats['gcs_ops_per_shard'])} shards "
            f"{stats['gcs_ops_per_shard']}; "
            f"global scheduler placed {stats['tasks_placed']}; "
            f"{stats['transfers']} transfers "
            f"({stats['bytes_transferred'] / 1e6:.2f} MB); "
            f"{stats['reconstructions']} reconstructions"
        )
        return "\n".join(lines)
