"""One-shot run report: everything R7 promises, in one artifact.

Combines the cluster dashboard, per-function profile, utilization
summary, failure history, and (optionally) the ASCII gantt into a single
text report — the terminal equivalent of the paper's "Web UI / Debugging
Tools / Profiling Tools" box in Figure 3.
"""

from __future__ import annotations

from repro.tools.dashboard import ClusterDashboard
from repro.tools.profiler import TaskProfiler
from repro.tools.utilization import render_gantt, utilization


def run_report(runtime, include_gantt: bool = False, gantt_width: int = 72) -> str:
    """Render a full post-run report for a simulated runtime."""
    sections = []

    sections.append("== cluster state ==")
    sections.append(ClusterDashboard(runtime).render())

    sections.append("\n== task profile ==")
    sections.append(TaskProfiler(runtime.event_log).report())

    profile = utilization(runtime.event_log, num_bins=20)
    sections.append("\n== utilization (mean busy workers per node) ==")
    if profile.per_node:
        for node, series in sorted(profile.per_node.items()):
            mean = float(series.mean())
            peak = float(series.max())
            bar = "#" * int(round(mean)) or "."
            sections.append(f"  {node:<18} mean {mean:5.2f}  peak {peak:5.2f}  {bar}")
        cluster_series = profile.cluster_series()
        sections.append(
            f"  cluster peak parallelism: {float(cluster_series.max()):.1f} workers"
        )
    else:
        sections.append("  (no task executions recorded)")

    failures = runtime.event_log.filter(kind="failure_detected")
    replays = runtime.event_log.filter(kind="lineage_replay")
    orphans = runtime.event_log.filter(kind="task_orphaned")
    sections.append("\n== failures ==")
    if failures or replays or orphans:
        for record in failures:
            sections.append(
                f"  t={record.timestamp:.4f} node {record.get('node')} declared dead"
            )
        sections.append(
            f"  {len(orphans)} task(s) re-placed, {len(replays)} lineage replay(s)"
        )
    else:
        sections.append("  none")

    if include_gantt:
        sections.append("\n== gantt ==")
        sections.append(render_gantt(runtime.event_log, width=gantt_width))

    return "\n".join(sections)
