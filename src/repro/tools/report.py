"""One-shot run report: everything R7 promises, in one artifact.

Combines the cluster dashboard, per-function profile, utilization
summary, failure history, and (optionally) the ASCII gantt into a single
text report — the terminal equivalent of the paper's "Web UI / Debugging
Tools / Profiling Tools" box in Figure 3.

Works on every backend: the sim's always-on event log, or a live
backend's collected trace (``tracing=True``).  A runtime without an
event log still gets a report — the trace sections degrade to a note
naming the knob instead of raising.
"""

from __future__ import annotations

from repro.obs import resolve_event_log
from repro.tools.dashboard import ClusterDashboard
from repro.tools.profiler import TaskProfiler
from repro.tools.utilization import render_gantt, utilization


def run_report(runtime, include_gantt: bool = False, gantt_width: int = 72) -> str:
    """Render a full post-run report for any runtime."""
    sections = []

    # The node-by-node dashboard reads the sim's modeled schedulers and
    # stores; live backends summarize through stats() instead.
    if getattr(runtime, "sim", None) is not None:
        sections.append("== cluster state ==")
        sections.append(ClusterDashboard(runtime).render())
    else:
        sections.append("== runtime state ==")
        stats = runtime.stats()
        for key in ("tasks_executed", "workers_crashed", "nodes_lost"):
            if key in stats:
                sections.append(f"  {key}: {stats[key]}")
        obs = stats.get("obs")
        if isinstance(obs, dict):
            sections.append(
                f"  tracing: enabled={obs.get('enabled')} "
                f"spans={obs.get('spans_recorded')} "
                f"dropped={obs.get('spans_dropped')}"
            )

    log = resolve_event_log(runtime)
    if log is None:
        sections.append(
            f"\n(no event log on this {type(runtime).__name__}: "
            "pass tracing=True at init to collect a live trace)"
        )
        return "\n".join(sections)

    sections.append("\n== task profile ==")
    sections.append(TaskProfiler(log).report())

    profile = utilization(log, num_bins=20)
    sections.append("\n== utilization (mean busy workers per node) ==")
    if profile.per_node:
        for node, series in sorted(profile.per_node.items()):
            mean = float(series.mean())
            peak = float(series.max())
            bar = "#" * int(round(mean)) or "."
            sections.append(f"  {node:<18} mean {mean:5.2f}  peak {peak:5.2f}  {bar}")
        cluster_series = profile.cluster_series()
        sections.append(
            f"  cluster peak parallelism: {float(cluster_series.max()):.1f} workers"
        )
    else:
        sections.append("  (no task executions recorded)")

    failures = log.filter(kind="failure_detected")
    replays = log.filter(kind="lineage_replay")
    orphans = log.filter(kind="task_orphaned")
    sections.append("\n== failures ==")
    if failures or replays or orphans:
        for record in failures:
            where = record.get("node") or record.get("worker")
            sections.append(
                f"  t={record.timestamp:.4f} {where} declared dead"
            )
        sections.append(
            f"  {len(orphans)} task(s) re-placed, {len(replays)} lineage replay(s)"
        )
    else:
        sections.append("  none")

    if log.dropped:
        sections.append(
            f"\n(note: {log.dropped} oldest record(s) evicted by the "
            "event-log ring; the sections above cover the retained window)"
        )

    if include_gantt:
        sections.append("\n== gantt ==")
        sections.append(render_gantt(log, width=gantt_width))

    return "\n".join(sections)
