"""Debugging and profiling tools (requirement R7).

The centralized control plane "makes it easy to write tools to profile
and inspect the state of the system" (Section 3.2.1).  Everything here is
a pure consumer of the event log and control-plane state:

* :func:`export_chrome_trace` — task timeline in Chrome ``about:tracing``
  / Perfetto JSON format (the prototype's web UI timeline).
* :class:`TaskProfiler` — per-function latency/throughput aggregates.
* :class:`ClusterDashboard` — textual cluster state snapshot.
* :func:`diagnose` — error reports tracing a failure back through the
  lineage recorded in the task table.
"""

from repro.tools.dashboard import ClusterDashboard
from repro.tools.diagnosis import diagnose, lookup_object, lookup_task, task_events
from repro.tools.profiler import FunctionStats, TaskProfiler
from repro.tools.timeline import export_chrome_trace, task_spans
from repro.tools.report import run_report
from repro.tools.utilization import UtilizationProfile, render_gantt, utilization

__all__ = [
    "run_report",
    "export_chrome_trace",
    "task_spans",
    "TaskProfiler",
    "FunctionStats",
    "ClusterDashboard",
    "diagnose",
    "lookup_task",
    "lookup_object",
    "task_events",
    "utilization",
    "UtilizationProfile",
    "render_gantt",
]
