"""Task timeline export (Chrome trace / Perfetto JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.store.event_log import EventLog


@dataclass(frozen=True)
class TaskSpan:
    """One task execution interval on one worker."""

    task_id: str
    function: str
    node: str
    worker: str
    start: float
    end: float
    failed: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


def task_spans(event_log: EventLog) -> list:
    """Pair task_started/task_finished events into execution spans."""
    open_spans: dict[tuple, dict] = {}
    spans: list[TaskSpan] = []
    for record in event_log:
        if record.kind == "task_started":
            key = (str(record.get("task_id")), str(record.get("worker")))
            open_spans[key] = {
                "start": record.timestamp,
                "node": str(record.get("node")),
                "function": record.get("function", "?"),
            }
        elif record.kind == "task_finished":
            key = (str(record.get("task_id")), str(record.get("worker")))
            info = open_spans.pop(key, None)
            if info is None:
                continue
            spans.append(
                TaskSpan(
                    task_id=key[0],
                    function=info["function"],
                    node=info["node"],
                    worker=key[1],
                    start=info["start"],
                    end=record.timestamp,
                    failed=bool(record.get("failed", False)),
                )
            )
    return spans


def export_chrome_trace(event_log: EventLog, path: Optional[str] = None) -> list:
    """Convert the event log into Chrome ``about:tracing`` events.

    Each task execution becomes a complete ("X") event with the node as
    the process row and the worker as the thread row, so the rendered
    timeline looks exactly like Figure 2's task-shape sketches.  If
    ``path`` is given, the JSON is also written there.
    """
    events = []
    for span in task_spans(event_log):
        events.append(
            {
                "name": span.function,
                "cat": "task",
                "ph": "X",
                "ts": span.start * 1e6,       # Chrome traces use microseconds
                "dur": span.duration * 1e6,
                "pid": span.node,
                "tid": span.worker,
                "args": {"task_id": span.task_id, "failed": span.failed},
            }
        )
    for record in event_log.filter(kind="node_killed"):
        events.append(
            {
                "name": "NODE KILLED",
                "cat": "failure",
                "ph": "i",
                "ts": record.timestamp * 1e6,
                "pid": str(record.get("node")),
                "s": "g",
            }
        )
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": events}, handle, indent=2)
    return events
