"""Static descriptions of simulated machines and clusters."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """One machine: schedulable resources plus object-store capacity.

    Parameters mirror the architecture in Figure 3 of the paper: several
    worker processes (one per CPU slot by default), optional GPUs, and a
    per-node shared-memory object store.
    """

    num_cpus: int = 4
    num_gpus: int = 0
    object_store_capacity: int = 2 * 1024**3  # bytes
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_cpus <= 0:
            raise ValueError(f"node needs at least one CPU, got {self.num_cpus}")
        if self.num_gpus < 0:
            raise ValueError(f"negative GPU count: {self.num_gpus}")
        if self.object_store_capacity <= 0:
            raise ValueError("object store capacity must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A set of nodes; node 0 is the head node.

    The head node hosts the driver, the control-plane shards, and the
    global scheduler(s), matching the paper's deployment sketch of a
    logically-centralized control plane.
    """

    nodes: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        for node in self.nodes:
            if not isinstance(node, NodeSpec):
                raise TypeError(f"expected NodeSpec, got {type(node).__name__}")

    @classmethod
    def uniform(
        cls,
        num_nodes: int,
        num_cpus: int = 4,
        num_gpus: int = 0,
        object_store_capacity: int = 2 * 1024**3,
    ) -> "ClusterSpec":
        """A homogeneous cluster of ``num_nodes`` identical machines."""
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be positive, got {num_nodes}")
        nodes = tuple(
            NodeSpec(
                num_cpus=num_cpus,
                num_gpus=num_gpus,
                object_store_capacity=object_store_capacity,
                name=f"node{i}",
            )
            for i in range(num_nodes)
        )
        return cls(nodes=nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def total_cpus(self) -> int:
        return sum(node.num_cpus for node in self.nodes)

    @property
    def total_gpus(self) -> int:
        return sum(node.num_gpus for node in self.nodes)

    def max_cpus_per_node(self) -> int:
        return max(node.num_cpus for node in self.nodes)

    def max_gpus_per_node(self) -> int:
        return max(node.num_gpus for node in self.nodes)
