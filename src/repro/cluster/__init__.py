"""Simulated cluster substrate: machines, network, and system cost model.

The paper evaluated its prototype on a physical cluster; here the machines
are explicit models — per-node CPU/GPU slots and an object-store capacity,
a network with latency and bandwidth, and a cost model for the fixed system
overheads (IPC hops, control-plane operations, task launch) that the
paper's microbenchmarks measure.
"""

from repro.cluster.costs import SystemCosts
from repro.cluster.network import NetworkModel
from repro.cluster.spec import ClusterSpec, NodeSpec
from repro.cluster.topology import RackNetworkModel

__all__ = ["NodeSpec", "ClusterSpec", "NetworkModel", "RackNetworkModel", "SystemCosts"]
