"""Network model for the simulated cluster.

Two-level model: messages between processes on the *same* node pay the IPC
latency from :class:`~repro.cluster.costs.SystemCosts`; messages between
nodes pay a propagation latency plus ``size / bandwidth`` serialization
time.  This is deliberately simple — the paper's claims depend on the
*existence* of a local/remote cost asymmetry (local scheduling avoids
network hops, locality-aware placement avoids transfers), not on any
particular fabric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.ids import NodeID


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth model between cluster nodes.

    Parameters
    ----------
    inter_node_latency:
        One-way propagation delay between two distinct nodes (seconds).
        Default 200 µs, calibrated to the paper's prototype whose
        remote-task RPC path (gRPC-less, Redis-mediated) reported ~1 ms
        end-to-end for an empty remote task.
    intra_node_latency:
        One-way delay between processes on one node (IPC hop).  Default 3 µs.
    bandwidth:
        Inter-node bandwidth in bytes/second.  Default 10 Gbit/s.
    intra_node_bandwidth:
        Shared-memory copy bandwidth for on-node object handoff.
    """

    inter_node_latency: float = 200e-6
    intra_node_latency: float = 3e-6
    bandwidth: float = 1.25e9
    intra_node_bandwidth: float = 10e9

    def __post_init__(self) -> None:
        if self.inter_node_latency < 0 or self.intra_node_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0 or self.intra_node_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

    def latency(self, src: NodeID, dst: NodeID) -> float:
        """One-way message latency between two nodes (or within one)."""
        if src == dst:
            return self.intra_node_latency
        return self.inter_node_latency

    def transfer_time(self, src: NodeID, dst: NodeID, num_bytes: int) -> float:
        """Time to move ``num_bytes`` from ``src`` to ``dst``."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if src == dst:
            return self.intra_node_latency + num_bytes / self.intra_node_bandwidth
        return self.inter_node_latency + num_bytes / self.bandwidth
