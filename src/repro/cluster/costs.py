"""Fixed system overheads charged by the simulated runtime.

These are the knobs that the paper's Section 4.1 microbenchmarks measure
end-to-end.  Defaults are calibrated so that an empty task on the simulated
cluster reproduces the paper's reported overheads (submit ≈ 35 µs,
get-after-completion ≈ 110 µs, end-to-end ≈ 290 µs locally / ≈ 1 ms
remotely); see ``benchmarks/bench_e1_microbenchmarks.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemCosts:
    """Per-operation overheads of runtime components (all in seconds)."""

    #: Driver/worker-side cost of building + handing a task spec to the
    #: local scheduler (the paper's 35 µs "task creation" number).
    submit_overhead: float = 35e-6

    #: Local scheduler's per-task decision time (queue inspection, resource
    #: check, spill decision).
    local_sched_decision: float = 15e-6

    #: Global scheduler's per-task placement time (load + locality lookup).
    global_sched_decision: float = 15e-6

    #: Cost to hand an assigned task to a worker and for the worker to set
    #: up execution (deserialize spec, bind arguments).
    worker_launch: float = 75e-6

    #: Object-store put bookkeeping (excluding serialization throughput).
    put_overhead: float = 25e-6

    #: Object-store get bookkeeping on the requesting side (the paper's
    #: 110 µs "retrieve result" covers this plus table lookup + IPC).
    get_overhead: float = 110e-6

    #: Service time of one control-plane (GCS) operation at a shard.
    gcs_op_service: float = 10e-6

    #: Serialization/deserialization throughput, bytes per second.
    serialization_bandwidth: float = 2e9

    #: Heartbeat period from local schedulers to the control plane.
    heartbeat_interval: float = 0.1

    #: Heartbeats missed before a node is declared dead.
    heartbeat_timeout_multiplier: float = 3.0

    def serialization_time(self, num_bytes: int) -> float:
        """Time to serialize or deserialize ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"negative size: {num_bytes}")
        return num_bytes / self.serialization_bandwidth

    @property
    def heartbeat_timeout(self) -> float:
        """Silence duration after which a node is declared dead."""
        return self.heartbeat_interval * self.heartbeat_timeout_multiplier

    def scaled(self, factor: float) -> "SystemCosts":
        """Uniformly scale every fixed overhead (for sensitivity sweeps)."""
        if factor < 0:
            raise ValueError(f"negative factor: {factor}")
        return replace(
            self,
            submit_overhead=self.submit_overhead * factor,
            local_sched_decision=self.local_sched_decision * factor,
            global_sched_decision=self.global_sched_decision * factor,
            worker_launch=self.worker_launch * factor,
            put_overhead=self.put_overhead * factor,
            get_overhead=self.get_overhead * factor,
            gcs_op_service=self.gcs_op_service * factor,
        )
