"""Rack-aware network topology.

The flat :class:`~repro.cluster.network.NetworkModel` suffices for the
paper's experiments; this two-tier variant (same-node / same-rack /
cross-rack) exists for sensitivity studies — e.g. how the E1 remote
latency and E9 placement quality react to oversubscribed cross-rack
links, a standard datacenter concern the paper's hybrid scheduler would
face in production.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.ids import NodeID


@dataclass
class RackNetworkModel:
    """Two-tier topology: cheap within a rack, expensive across racks.

    Assign nodes to racks with :meth:`place`; unassigned nodes fall back
    to cross-rack costs (conservative).  Drop-in compatible with
    :class:`NetworkModel` (same ``latency`` / ``transfer_time`` methods).
    """

    intra_node_latency: float = 3e-6
    intra_rack_latency: float = 100e-6
    cross_rack_latency: float = 400e-6
    intra_node_bandwidth: float = 10e9
    intra_rack_bandwidth: float = 1.25e9
    #: Cross-rack links are typically oversubscribed (e.g. 4:1).
    cross_rack_bandwidth: float = 0.3125e9
    _rack_of: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("intra_node_latency", "intra_rack_latency", "cross_rack_latency"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")
        for name in (
            "intra_node_bandwidth", "intra_rack_bandwidth", "cross_rack_bandwidth"
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"non-positive {name}")

    def place(self, node_id: NodeID, rack: int) -> None:
        """Assign a node to a rack."""
        if rack < 0:
            raise ValueError(f"negative rack index: {rack}")
        self._rack_of[node_id] = rack

    def place_round_robin(self, node_ids, num_racks: int) -> None:
        """Spread nodes across ``num_racks`` racks in order."""
        if num_racks <= 0:
            raise ValueError("num_racks must be positive")
        for index, node_id in enumerate(node_ids):
            self.place(node_id, index % num_racks)

    def rack_of(self, node_id: NodeID):
        return self._rack_of.get(node_id)

    def same_rack(self, a: NodeID, b: NodeID) -> bool:
        rack_a = self._rack_of.get(a)
        rack_b = self._rack_of.get(b)
        return rack_a is not None and rack_a == rack_b

    def latency(self, src: NodeID, dst: NodeID) -> float:
        if src == dst:
            return self.intra_node_latency
        if self.same_rack(src, dst):
            return self.intra_rack_latency
        return self.cross_rack_latency

    def transfer_time(self, src: NodeID, dst: NodeID, num_bytes: int) -> float:
        if num_bytes < 0:
            raise ValueError(f"negative transfer size: {num_bytes}")
        if src == dst:
            return self.intra_node_latency + num_bytes / self.intra_node_bandwidth
        if self.same_rack(src, dst):
            return self.intra_rack_latency + num_bytes / self.intra_rack_bandwidth
        return self.cross_rack_latency + num_bytes / self.cross_rack_bandwidth
