"""Driver-side coordination of the shared-memory data plane.

The :class:`ShmCoordinator` owns the :class:`~repro.shm.store.SharedObjectStore`
and everything the proc runtime needs around it:

* the **object directory** — ObjectID → (segment, slot, offset/size)
  metadata, served to workers as :class:`~repro.proc.messages.ShmDescriptor`
  replies so large objects cross the pipe as ~100-byte descriptors
  instead of payloads;
* **two-phase worker writes** — a worker asks for an allocation
  (``SHM_CREATE``), fills it through its own mapping, and the driver
  seals on ``SHM_SEAL``/``RESULT``; the coordinator tracks which client
  owns each unsealed allocation so a crash can abort it;
* the **reaper** — reclaims arena space whose refcount row has drained,
  and (on worker crash) zeroes the dead client's refcount column and
  aborts its unsealed allocations, so a killed worker can never strand
  an object or leak arena space;
* **guaranteed unlinking** — :meth:`shutdown` closes and unlinks every
  segment exactly once, even after worker crashes; no shm names outlive
  the runtime.

Everything here runs under the proc runtime's lock (single-writer
discipline of the store); the only cross-process state is the segments
themselves.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.objectstore.store import ObjectStoreFullError
from repro.shm.store import SharedObjectStore
from repro.utils.ids import NodeID, ObjectID
from repro.utils.serialization import (
    SerializedBuffers,
    deserialize_frame,
    write_frame,
)

#: Client index the driver uses for its own refcount cells (workers use
#: ``worker_index + 1``).
DRIVER_CLIENT = 0


class ShmCoordinator:
    """Object directory + lifecycle authority for the shm data plane."""

    def __init__(
        self,
        node_id: NodeID,
        capacity: int,
        num_workers: int,
        seed: int = 0,
    ) -> None:
        # Short prefix by necessity: POSIX shm names are capped at 31
        # chars (incl. the leading slash) on macOS, and the full name is
        # "<prefix>[o]_<8 hex>".  "rs<pid hex><seed hex>" keeps the
        # whole thing under the limit while staying per-runtime unique.
        self.store = SharedObjectStore(
            node_id,
            capacity=capacity,
            max_clients=num_workers + 1,
            name_prefix=f"rs{os.getpid():x}s{seed & 0xFFFF:x}",
        )
        #: Unsealed allocations: object_id -> owning client index.
        self._pending: dict[ObjectID, int] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # Directory
    # ------------------------------------------------------------------

    def contains(self, object_id: ObjectID) -> bool:
        """Whether a *sealed* object is resident (unsealed allocations
        are invisible: their bytes are not readable yet)."""
        return (
            self.store.contains(object_id) and object_id not in self._pending
        )

    def size_of(self, object_id: ObjectID) -> Optional[int]:
        if not self.contains(object_id):
            return None
        return self.store.size_of(object_id)

    def describe(self, object_id: ObjectID) -> Optional[tuple]:
        """``(segment_name, slot, size)`` for a sealed resident object."""
        if not self.contains(object_id):
            return None
        return self.store.describe(object_id)

    # ------------------------------------------------------------------
    # Driver-side writes and reads
    # ------------------------------------------------------------------

    def put_serialized(
        self, object_id: ObjectID, serialized: SerializedBuffers
    ) -> bool:
        """Write a split value as a frame; the value's single copy.

        Returns False (caller falls back to the pipe store) when the
        byte budget cannot take it; never raises capacity errors."""
        try:
            self.store.put_with_writer(
                object_id,
                serialized.frame_bytes,
                lambda view: write_frame(view, serialized),
            )
        except ObjectStoreFullError:
            return False
        self.store.pin(object_id)  # the only replica: never evict
        return True

    def begin_put(self, object_id: ObjectID, size: int) -> Optional[memoryview]:
        """Two-phase driver put: reserve an unsealed, pinned allocation
        (call under the runtime lock) and return its writable window.
        The multi-MB frame copy then happens *outside* the lock — the
        allocation is invisible (pending) and immovable (pinned)
        meanwhile — followed by :meth:`finish_put` under the lock.
        ``None`` when the byte budget cannot take it."""
        try:
            entry = self.store.create(object_id, size)
        except ObjectStoreFullError:
            return None
        if entry is None:
            return None
        self._pending[object_id] = DRIVER_CLIENT
        self.store.pin(object_id)
        return entry.segment.slot_view(entry.slot, writable=True)

    def finish_put(self, object_id: ObjectID) -> None:
        """Publish a :meth:`begin_put` allocation (under the lock)."""
        self.seal(object_id)

    def view(self, object_id: ObjectID) -> Optional[memoryview]:
        """Zero-copy window over a sealed object's frame (touches LRU;
        call under the lock).  Deserialization can then happen outside
        the lock — the object is pinned, so the window cannot move."""
        if not self.contains(object_id):
            return None
        return self.store.get(object_id)

    def load(self, object_id: ObjectID) -> Any:
        """Zero-copy reconstruction of a sealed object's value."""
        view = self.view(object_id)
        if view is None:
            raise KeyError(f"object {object_id} is not in the shm store")
        return deserialize_frame(view)

    # ------------------------------------------------------------------
    # Two-phase worker writes
    # ------------------------------------------------------------------

    def create_for_client(
        self, object_id: ObjectID, size: int, client: int
    ) -> Optional[tuple]:
        """Allocate ``size`` bytes for a worker to fill; returns the
        descriptor tuple ``(segment_name, slot, size)`` or ``None`` when
        the budget is full (the worker then ships bytes over the pipe)."""
        try:
            entry = self.store.create(object_id, size)
        except ObjectStoreFullError:
            return None
        if entry is None:
            # Already resident (a replayed task racing a surviving
            # result): refuse the grant rather than hand out a second
            # writer window — the pipe path handles the duplicate.
            return None
        self._pending[object_id] = client
        self.store.pin(object_id)
        return entry.segment.name, entry.slot, size

    def seal(self, object_id: ObjectID) -> bool:
        """Seal a worker-filled allocation; returns False if it was
        already aborted (e.g. the writer crashed and the reaper won)."""
        self._pending.pop(object_id, None)
        if not self.store.contains(object_id):
            return False
        self.store.seal(object_id)
        return True

    def abort(self, object_id: ObjectID) -> None:
        """Drop an unsealed allocation (writer crashed or task was
        cancelled mid-write)."""
        self._pending.pop(object_id, None)
        self.store.unpin(object_id)
        self.store.abort(object_id)

    def abort_if_pending(self, object_id: ObjectID) -> None:
        """Abort only if ``object_id`` has an unsealed allocation — the
        safe form for callers that may race a sealed object."""
        if object_id in self._pending:
            self.abort(object_id)

    # ------------------------------------------------------------------
    # The reaper
    # ------------------------------------------------------------------

    def reap(self) -> int:
        """Release arena space whose refcount rows have drained."""
        return self.store.reap()

    def reclaim_client(self, client: int) -> int:
        """A worker process died: zero its refcount column everywhere,
        abort its unsealed allocations, and reap.  Returns the number of
        refcount cells reclaimed."""
        doomed = [
            object_id
            for object_id, owner in self._pending.items()
            if owner == client
        ]
        for object_id in doomed:
            self.abort(object_id)
        return self.store.clear_client(client)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def segment_names(self) -> tuple:
        return self.store.segment_names()

    def shutdown(self) -> None:
        """Unlink every segment (idempotent; crash-safe)."""
        if self.closed:
            return
        self.closed = True
        self.store.shutdown()

    def stats(self) -> dict:
        stats = self.store.stats()
        stats["pending_creates"] = len(self._pending)
        return stats
