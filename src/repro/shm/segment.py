"""Arena allocation over one shared-memory segment.

A :class:`SharedSegment` is one ``multiprocessing.shared_memory`` block
split into a **header region** and a **data arena**:

::

    [magic | geometry | slot table ........ | data arena ............]
                        ^ max_objects slots   ^ payloads, 64-B aligned

Each *slot* describes one object: its lifecycle state
(``FREE → ALLOCATED → SEALED → FREE``), its payload's offset/size in the
arena, and a row of **per-client refcount cells** — one 32-bit cell per
attached process.  A client only ever writes its *own* cell, so refcount
traffic needs no cross-process locks and no atomics: every cell has a
single writer, and the store reads the row's sum (a conservative,
monotone-correct view — a stale non-zero merely delays reclamation; a
zero can only be read after the owner really released).

The lifecycle discipline that makes the sum safe:

* only the **creator process** (the driver) allocates, seals, and
  releases — workers never mutate slot state, only their refcount cell;
* a reader increments its cell *after* receiving a descriptor from the
  creator and decrements when done; the creator keeps its own hold (the
  store's pin) for as long as the object must stay readable, so a
  reader's first increment always happens while the row is provably
  non-zero — there is no window in which space could be recycled under
  a reader that has been handed a descriptor;
* space whose row is non-zero is never reused (the store defers it to
  the reaper instead), so a crashed reader can strand bytes but never
  corrupt a live object.

The arena itself is a bump allocator with a coalescing free list:
release returns ``(offset, size)`` to the free list, merging adjacent
holes; when the segment empties completely the bump pointer resets.
Allocation is creator-only and single-threaded by construction (the
driver holds its runtime lock), so the free list needs no
synchronization either.
"""

from __future__ import annotations

import os
import secrets
import struct
from typing import Optional

from repro.errors import ReproError

try:  # pragma: no cover - absent only on exotic/embedded builds
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None
    resource_tracker = None

#: Slot lifecycle states.
FREE, ALLOCATED, SEALED = 0, 1, 2

#: Header geometry: magic, max_objects, max_clients, data_offset, capacity.
_HEADER = struct.Struct("<IIIQQ")
_MAGIC = 0x52504C31  # "RPL1" — repro plasma layout v1

#: Per-slot fixed part: state u32, pad u32, offset u64, size u64.
_SLOT = struct.Struct("<IIQQ")
_CELL = struct.Struct("<I")

#: Payload alignment — cache-line/numpy friendly.
ALIGNMENT = 64


class SegmentError(ReproError):
    """A shared-memory segment operation violated the slot lifecycle."""


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _slot_stride(max_clients: int) -> int:
    return _SLOT.size + _CELL.size * max_clients


def header_bytes(max_objects: int, max_clients: int) -> int:
    """Total header size (geometry + slot table), data-aligned."""
    return _align(_HEADER.size + max_objects * _slot_stride(max_clients))


#: Budgets smaller than this are not worth a data plane (the inline
#: threshold already keeps objects this small on the pipe).
MIN_SHM_CAPACITY = 4 * 1024**2


def usable_shm_budget(requested: int) -> int:
    """Clamp a requested shm byte budget to what the host can back.

    POSIX shm on Linux is a size-limited tmpfs (Docker defaults
    /dev/shm to 64 MB) that enforces its limit at *page allocation*,
    not at ftruncate — an oversized segment creates fine and then kills
    the writer with SIGBUS when the arena grows past the limit.  So the
    budget is capped to half the filesystem's free space; when even
    that is below :data:`MIN_SHM_CAPACITY` the data plane is disabled
    (returns 0) and objects take the pipe.  Hosts without a statvfs
    view of shm (macOS) return the request unchanged."""
    try:
        stats = os.statvfs("/dev/shm")
    except (OSError, AttributeError):  # no tmpfs view: trust the request
        return requested
    budget = min(requested, (stats.f_bavail * stats.f_frsize) // 2)
    if budget < requested and budget < MIN_SHM_CAPACITY:
        return 0  # *host*-limited below usefulness: pipe-only
    return budget  # a deliberately tiny request is honored as asked


def shm_available() -> bool:
    """Whether this host can create POSIX shared-memory segments.

    Probes once per process by creating and unlinking a minimal segment;
    containers without /dev/shm (or with it mounted noexec/full) make
    this False, and the proc backend then falls back to the pipe path.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=ALIGNMENT)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except OSError:
                _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


class SharedSegment:
    """One shared-memory block: slot table + arena (see module docstring).

    Create with :meth:`create` (the owning driver) or :meth:`attach`
    (a reading/writing worker).  Only the creator may call
    :meth:`allocate`, :meth:`seal`, :meth:`release`, or
    :meth:`clear_client`; attached clients use :meth:`view`,
    :meth:`incref`, and :meth:`decref`.
    """

    def __init__(self, shm, max_objects: int, max_clients: int, owner: bool) -> None:
        self._shm = shm
        self.name = shm.name
        self.max_objects = max_objects
        self.max_clients = max_clients
        self.owner = owner
        self._data_offset = header_bytes(max_objects, max_clients)
        self.capacity = shm.size - self._data_offset
        self._unlinked = False
        self._closed = False
        if owner:
            #: Creator-side allocator state (never shared): free holes as
            #: sorted (offset, size) plus the bump high-water mark.
            self._free: list[tuple[int, int]] = []
            self._bump = self._data_offset
            self._allocated = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        capacity: int,
        max_objects: int = 4096,
        max_clients: int = 16,
        name_prefix: str = "repro_shm",
    ) -> "SharedSegment":
        """Create a fresh segment able to hold ``capacity`` payload bytes."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_objects < 1 or max_clients < 1:
            raise ValueError("max_objects and max_clients must be >= 1")
        header = header_bytes(max_objects, max_clients)
        # token_hex(4) keeps names inside macOS's 31-char shm limit for
        # any sane prefix; 2^32 per-process collision space is plenty.
        name = f"{name_prefix}_{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=header + _align(capacity)
        )
        _HEADER.pack_into(
            shm.buf, 0, _MAGIC, max_objects, max_clients, header, capacity
        )
        # POSIX shm is zero-filled on creation: every slot already reads
        # as FREE with zero refcounts; nothing else to initialize.
        return cls(shm, max_objects, max_clients, owner=True)

    @classmethod
    def attach(cls, name: str, untrack: bool = False) -> "SharedSegment":
        """Attach to an existing segment by name (worker side).

        Proc workers are mp-*spawned children* and share the driver's
        ``resource_tracker`` daemon, so their attach-time registration
        is a set no-op and needs no compensation — the tracker keeps
        exactly one entry, removed by the creator's :meth:`unlink`
        (and acting as the leak safety net if the driver is SIGKILLed).
        Pass ``untrack=True`` only when attaching from a *foreign*
        process with its own tracker: there, before 3.13, every attach
        registers the segment for cleanup and the first such process to
        exit would unlink a segment the creator still owns.
        """
        shm = shared_memory.SharedMemory(name=name)
        if untrack and resource_tracker is not None:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker impl detail
                pass
        magic, max_objects, max_clients, _, _ = _HEADER.unpack_from(shm.buf, 0)
        if magic != _MAGIC:
            shm.close()
            raise SegmentError(f"segment {name!r} has no repro header")
        return cls(shm, max_objects, max_clients, owner=False)

    # ------------------------------------------------------------------
    # Slot table primitives
    # ------------------------------------------------------------------

    def _slot_offset(self, slot: int) -> int:
        if not 0 <= slot < self.max_objects:
            raise SegmentError(f"slot {slot} out of range")
        return _HEADER.size + slot * _slot_stride(self.max_clients)

    def _read_slot(self, slot: int) -> tuple[int, int, int]:
        state, _, offset, size = _SLOT.unpack_from(
            self._shm.buf, self._slot_offset(slot)
        )
        return state, offset, size

    def _write_slot(self, slot: int, state: int, offset: int, size: int) -> None:
        _SLOT.pack_into(self._shm.buf, self._slot_offset(slot), state, 0, offset, size)

    def state_of(self, slot: int) -> int:
        return self._read_slot(slot)[0]

    def _cell_offset(self, slot: int, client: int) -> int:
        if not 0 <= client < self.max_clients:
            raise SegmentError(
                f"client index {client} out of range (max_clients="
                f"{self.max_clients})"
            )
        return self._slot_offset(slot) + _SLOT.size + client * _CELL.size

    # ------------------------------------------------------------------
    # Refcounts (any attached process; single writer per cell)
    # ------------------------------------------------------------------

    def incref(self, slot: int, client: int) -> int:
        """Increment ``client``'s refcount cell for ``slot``."""
        offset = self._cell_offset(slot, client)
        (count,) = _CELL.unpack_from(self._shm.buf, offset)
        _CELL.pack_into(self._shm.buf, offset, count + 1)
        return count + 1

    def decref(self, slot: int, client: int) -> int:
        """Decrement ``client``'s cell; a drop below zero is an invariant
        violation (a release without a matching hold) and raises."""
        offset = self._cell_offset(slot, client)
        (count,) = _CELL.unpack_from(self._shm.buf, offset)
        if count == 0:
            raise SegmentError(
                f"refcount underflow: slot {slot} client {client} is already 0"
            )
        _CELL.pack_into(self._shm.buf, offset, count - 1)
        return count - 1

    def refcount(self, slot: int) -> int:
        """Sum of all clients' cells (creator's conservative view)."""
        base = self._slot_offset(slot) + _SLOT.size
        return sum(
            _CELL.unpack_from(self._shm.buf, base + i * _CELL.size)[0]
            for i in range(self.max_clients)
        )

    def client_refcount(self, slot: int, client: int) -> int:
        (count,) = _CELL.unpack_from(self._shm.buf, self._cell_offset(slot, client))
        return count

    def clear_client(self, client: int) -> list[int]:
        """Zero one client's refcount column (creator-only reaping of a
        dead process).  Returns the slots that held non-zero counts."""
        self._require_owner("clear_client")
        reclaimed = []
        for slot in range(self.max_objects):
            if self.client_refcount(slot, client) > 0:
                _CELL.pack_into(self._shm.buf, self._cell_offset(slot, client), 0)
                reclaimed.append(slot)
        return reclaimed

    # ------------------------------------------------------------------
    # Allocation lifecycle (creator only)
    # ------------------------------------------------------------------

    def _require_owner(self, op: str) -> None:
        if not self.owner:
            raise SegmentError(f"{op} is creator-only (attached client)")

    def allocate(self, size: int) -> Optional[int]:
        """Reserve ``size`` contiguous bytes; returns a slot index, or
        ``None`` when no free slot or no contiguous hole fits (the store
        then falls back to another segment)."""
        self._require_owner("allocate")
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        slot = self._find_free_slot()
        if slot is None:
            return None
        offset = self._carve(_align(size))
        if offset is None:
            return None
        self._write_slot(slot, ALLOCATED, offset, size)
        self._allocated += 1
        return slot

    def _find_free_slot(self) -> Optional[int]:
        for slot in range(self.max_objects):
            if self.state_of(slot) == FREE:
                return slot
        return None

    def _carve(self, aligned: int) -> Optional[int]:
        # Best-fit from the free list first, then the bump region.
        best = None
        for index, (offset, size) in enumerate(self._free):
            if size >= aligned and (best is None or size < self._free[best][1]):
                best = index
        if best is not None:
            offset, size = self._free.pop(best)
            if size > aligned:
                self._free.append((offset + aligned, size - aligned))
                self._free.sort()
            return offset
        end = self._data_offset + self.capacity
        if self._bump + aligned <= end:
            offset = self._bump
            self._bump += aligned
            return offset
        return None

    def seal(self, slot: int) -> None:
        """Transition ALLOCATED → SEALED: the payload is now immutable
        and readable by any attached client."""
        self._require_owner("seal")
        state, offset, size = self._read_slot(slot)
        if state != ALLOCATED:
            raise SegmentError(f"seal: slot {slot} is not ALLOCATED (state={state})")
        self._write_slot(slot, SEALED, offset, size)

    def release(self, slot: int) -> int:
        """Return a slot's space to the arena; the payload bytes become
        reusable.  Requires the refcount row to read zero — callers that
        see a non-zero row defer to the reaper instead.  Returns the
        number of payload bytes freed."""
        self._require_owner("release")
        state, offset, size = self._read_slot(slot)
        if state == FREE:
            raise SegmentError(f"release: slot {slot} is already FREE")
        count = self.refcount(slot)
        if count > 0:
            raise SegmentError(
                f"release: slot {slot} still has {count} live reference(s)"
            )
        self._write_slot(slot, FREE, 0, 0)
        self._free_space(offset, _align(size))
        self._allocated -= 1
        if self._allocated == 0:
            # The arena emptied: forget fragmentation entirely.
            self._free.clear()
            self._bump = self._data_offset
        return size

    def _free_space(self, offset: int, aligned: int) -> None:
        if offset + aligned == self._bump:
            self._bump = offset          # shrink the high-water mark...
            while self._free and sum(self._free[-1]) == self._bump:
                off, size = self._free.pop()
                self._bump = off         # ...swallowing adjacent holes
            return
        self._free.append((offset, aligned))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for off, size in self._free:     # coalesce adjacent holes
            if merged and sum(merged[-1]) == off:
                prev_off, prev_size = merged.pop()
                merged.append((prev_off, prev_size + size))
            else:
                merged.append((off, size))
        self._free = merged

    # ------------------------------------------------------------------
    # Payload access
    # ------------------------------------------------------------------

    def view(self, offset: int, size: int, writable: bool = False) -> memoryview:
        """A memoryview over ``size`` payload bytes at ``offset`` — the
        zero-copy read (or, for the writer filling an ALLOCATED slot,
        write) window."""
        end = self._data_offset + self.capacity
        if offset < self._data_offset or offset + size > end:
            raise SegmentError(
                f"view [{offset}, {offset + size}) outside the data arena"
            )
        window = self._shm.buf[offset : offset + size]
        return window if writable else window.toreadonly()

    def slot_view(self, slot: int, writable: bool = False) -> memoryview:
        state, offset, size = self._read_slot(slot)
        if state == FREE:
            raise SegmentError(f"slot {slot} is FREE")
        if not writable and state != SEALED:
            raise SegmentError(f"read of unsealed slot {slot}")
        return self.view(offset, size, writable=writable)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping.  If user code still holds
        zero-copy views (numpy arrays aliasing the arena), the unmap is
        skipped — the OS frees the memory when the last view dies — but
        the segment is still unlinkable."""
        if self._closed:
            return
        try:
            self._shm.close()
        except BufferError:
            # Exported views keep the mapping alive; that is exactly the
            # zero-copy contract.  Disarm the SharedMemory finalizer so
            # a later GC does not re-raise from __del__; the mapping is
            # released when the last view dies (or at process exit), and
            # unlink() still removes the name either way.
            self._shm._buf = None
            self._shm._mmap = None
        self._closed = True

    def unlink(self) -> None:
        """Remove the segment's name from the system (creator-only).

        Idempotent; existing mappings (ours or a worker's) stay valid
        until each process closes or exits, so in-flight zero-copy reads
        are never torn."""
        self._require_owner("unlink")
        if self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already reaped externally
            pass

    def stats(self) -> dict:
        live = 0
        if self.owner:
            live = self._allocated
        return {
            "name": self.name,
            "capacity": self.capacity,
            "allocated_objects": live,
            "bump_bytes": (self._bump - self._data_offset) if self.owner else None,
            "free_holes": len(self._free) if self.owner else None,
        }
