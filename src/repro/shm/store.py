"""The shared-memory object store and its worker-side client.

:class:`SharedObjectStore` exposes the exact contract of
:class:`~repro.objectstore.store.LocalObjectStore` — byte-capacity bound,
LRU eviction of unpinned objects, nested pinning, the same stats — but
its payloads live in sealed :class:`~repro.shm.segment.SharedSegment`
arenas, so ``get`` returns a zero-copy read-only ``memoryview`` instead
of bytes, and other processes can attach and read the same payload
without any copy at all.

Capacity semantics are byte-accounted exactly like the local store: a
put succeeds iff the bytes fit after evicting every unpinned LRU object,
regardless of arena fragmentation.  Contiguity is an allocator concern,
not a contract concern — when no segment has a large-enough hole, the
store creates a dedicated *overflow segment* for the object (still
counted against the capacity bound) rather than failing a put the byte
budget allows.  This keeps the store's observable behavior a drop-in
match for the local store's executable model (see
``tests/test_objectstore.py``).

Cross-process refcounts add one twist the local store does not have:
space whose refcount row is non-zero (a worker is mid-read, or a worker
died holding a reference) cannot be recycled at eviction time.  Such
entries become **zombies** — gone from the directory, their bytes no
longer counted against capacity, their arena space parked until the
reaper (:meth:`SharedObjectStore.reap`, driven by the coordinator) sees
the row hit zero and releases it.

:class:`ShmClient` is the other side: a worker-process helper that
attaches segments lazily (caching attachments by name), holds/releases
its own refcount cells, and reads or writes payloads through descriptor
metadata received over the pipe.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from repro.objectstore.store import ObjectStoreFullError
from repro.shm.segment import SharedSegment
from repro.utils.ids import NodeID, ObjectID

#: Default slot-table size for the primary segment; overflow segments
#: hold exactly one object each.
DEFAULT_MAX_OBJECTS = 4096


@dataclass
class _Entry:
    """Directory record of one resident object."""

    segment: SharedSegment
    slot: int
    size: int
    sealed: bool = False


class SharedObjectStore:
    """LocalObjectStore's contract over shared-memory arenas.

    Single-writer: exactly one process (the driver) creates, seals,
    evicts, and releases; attached readers interact through
    :class:`ShmClient` using descriptor metadata.  All methods here are
    driver-side and assume the driver's own synchronization (the proc
    runtime holds its lock around every call).
    """

    def __init__(
        self,
        node_id: NodeID,
        capacity: int,
        max_clients: int = 16,
        max_objects: int = DEFAULT_MAX_OBJECTS,
        name_prefix: str = "repro_shm",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.node_id = node_id
        self.capacity = capacity
        self.max_clients = max_clients
        self.name_prefix = name_prefix
        self._primary = SharedSegment.create(
            capacity,
            max_objects=max_objects,
            max_clients=max_clients,
            name_prefix=name_prefix,
        )
        self._segments: list[SharedSegment] = [self._primary]
        self._entries: "OrderedDict[ObjectID, _Entry]" = OrderedDict()
        self._pins: dict[ObjectID, int] = {}
        #: Evicted/deleted entries whose refcount row was still non-zero.
        self._zombies: list[_Entry] = []
        self.used_bytes = 0
        self.evictions = 0
        self.puts = 0
        self.hits = 0
        self.misses = 0
        self.closed = False

    # -- basic access ---------------------------------------------------

    def contains(self, object_id: ObjectID) -> bool:
        return object_id in self._entries

    def size_of(self, object_id: ObjectID) -> Optional[int]:
        entry = self._entries.get(object_id)
        return entry.size if entry is not None else None

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def num_objects(self) -> int:
        return len(self._entries)

    def object_ids(self) -> tuple:
        """Resident object ids in LRU order, oldest first (introspection
        for invariant checks; does not touch recency)."""
        return tuple(self._entries.keys())

    @property
    def deferred_bytes(self) -> int:
        """Bytes parked in zombie allocations awaiting refcount zero."""
        return sum(entry.size for entry in self._zombies)

    def segment_names(self) -> tuple:
        return tuple(segment.name for segment in self._segments)

    # -- the write path: create → fill → seal ---------------------------

    def put(self, object_id: ObjectID, data) -> None:
        """Insert a bytes-like payload, evicting LRU unpinned objects as
        needed (the LocalObjectStore-compatible one-shot write)."""
        payload = memoryview(data)
        size = payload.nbytes

        def writer(view: memoryview) -> None:
            view[:] = payload

        self.put_with_writer(object_id, size, writer)

    def put_with_writer(
        self, object_id: ObjectID, size: int, writer: Callable[[memoryview], None]
    ) -> None:
        """Allocate ``size`` bytes, let ``writer`` fill them, seal.

        The zero-extra-copy write path: ``writer`` receives the arena
        window directly (e.g. :func:`~repro.utils.serialization.write_frame`).

        Raises
        ------
        ObjectStoreFullError
            If the object cannot fit even after evicting everything
            evictable (or is larger than the store's total capacity).
        """
        entry = self.create(object_id, size)
        if entry is None:
            return  # idempotent re-put: recency touched, bytes kept
        try:
            writer(entry.segment.slot_view(entry.slot, writable=True))
        except BaseException:
            self._abort_entry(object_id, entry)
            raise
        self.seal(object_id)

    def create(self, object_id: ObjectID, size: int) -> Optional[_Entry]:
        """Reserve an unsealed allocation for ``object_id`` (two-phase
        write: a worker fills it through its own mapping, then the
        driver seals).  Returns ``None`` for an idempotent re-put of a
        resident id."""
        if object_id in self._entries:
            self._entries.move_to_end(object_id)
            return None
        if size > self.capacity:
            raise ObjectStoreFullError(
                f"object of {size} bytes exceeds store capacity {self.capacity}"
            )
        self._evict_until(size)
        entry = self._allocate(size)
        self._entries[object_id] = entry
        self.used_bytes += size
        self.puts += 1
        return entry

    def seal(self, object_id: ObjectID) -> None:
        """Mark a created object immutable and readable."""
        entry = self._entries[object_id]
        if not entry.sealed:
            entry.segment.seal(entry.slot)
            entry.sealed = True

    def abort(self, object_id: ObjectID) -> bool:
        """Drop an unsealed allocation (writer crashed before sealing)."""
        entry = self._entries.get(object_id)
        if entry is None or entry.sealed:
            return False
        self._abort_entry(object_id, entry)
        return True

    def _abort_entry(self, object_id: ObjectID, entry: _Entry) -> None:
        self._entries.pop(object_id, None)
        self._pins.pop(object_id, None)
        self.used_bytes -= entry.size
        self.puts -= 1
        self._reclaim(entry)

    # -- the read path --------------------------------------------------

    def get(self, object_id: ObjectID) -> Optional[memoryview]:
        """Zero-copy read: a read-only memoryview of the sealed payload
        (touches LRU order).  ``None`` if not resident."""
        entry = self._entries.get(object_id)
        if entry is None or not entry.sealed:
            self.misses += 1
            return None
        self._entries.move_to_end(object_id)
        self.hits += 1
        return entry.segment.slot_view(entry.slot)

    def describe(self, object_id: ObjectID) -> Optional[tuple]:
        """Descriptor metadata ``(segment_name, slot, size)`` for a
        sealed resident object — what crosses the pipe instead of bytes.
        Touches LRU order like a read."""
        entry = self._entries.get(object_id)
        if entry is None:
            return None
        self._entries.move_to_end(object_id)
        self.hits += 1
        return entry.segment.name, entry.slot, entry.size

    def refcount(self, object_id: ObjectID) -> int:
        """Sum of all clients' refcount cells for a resident object."""
        entry = self._entries.get(object_id)
        if entry is None:
            return 0
        return entry.segment.refcount(entry.slot)

    # -- delete / eviction ----------------------------------------------

    def delete(self, object_id: ObjectID) -> bool:
        """Explicitly remove an object (no control-plane notification)."""
        entry = self._entries.pop(object_id, None)
        if entry is None:
            return False
        self.used_bytes -= entry.size
        self._pins.pop(object_id, None)
        self._reclaim(entry)
        return True

    def _reclaim(self, entry: _Entry) -> None:
        """Release an entry's arena space now, or park it for the reaper
        when a client still holds a reference."""
        if entry.segment.refcount(entry.slot) > 0:
            self._zombies.append(entry)
            return
        entry.segment.release(entry.slot)
        self._maybe_drop_segment(entry.segment)

    def reap(self) -> int:
        """Release every zombie whose refcount row has reached zero.
        Returns the number of bytes returned to the arena."""
        freed = 0
        survivors, emptied = [], []
        for entry in self._zombies:
            if entry.segment.refcount(entry.slot) == 0:
                freed += entry.size
                entry.segment.release(entry.slot)
                emptied.append(entry.segment)
            else:
                survivors.append(entry)
        # Update the zombie list *before* the drop pass: a segment whose
        # last allocation was just released must not be kept alive by
        # its own stale zombie entry.
        self._zombies = survivors
        for segment in emptied:
            self._maybe_drop_segment(segment)
        return freed

    def clear_client(self, client: int) -> int:
        """Zero a dead client's refcount column on every segment (the
        crash half of the reaper), then reap.  Returns the number of
        slots whose counts were reclaimed."""
        reclaimed = 0
        for segment in self._segments:
            reclaimed += len(segment.clear_client(client))
        self.reap()
        return reclaimed

    def _evict_until(self, needed: int) -> None:
        """Evict LRU unpinned objects until ``needed`` bytes fit the
        byte budget (identical policy to LocalObjectStore)."""
        if needed <= self.free_bytes:
            return
        for object_id in list(self._entries.keys()):
            if self.free_bytes >= needed:
                return
            if self.is_pinned(object_id):
                continue
            entry = self._entries.pop(object_id)
            self.used_bytes -= entry.size
            self.evictions += 1
            self._reclaim(entry)
        if self.free_bytes < needed:
            raise ObjectStoreFullError(
                f"need {needed} bytes but only {self.free_bytes} evictable on "
                f"{self.node_id} (pinned objects: {len(self._pins)})"
            )

    def _allocate(self, size: int) -> _Entry:
        """Find contiguous arena space: any existing segment, reaped
        zombies, then a dedicated overflow segment."""
        for segment in self._segments:
            slot = segment.allocate(size)
            if slot is not None:
                return _Entry(segment, slot, size)
        if self.reap() > 0:  # zombie space may unblock a hole
            for segment in self._segments:
                slot = segment.allocate(size)
                if slot is not None:
                    return _Entry(segment, slot, size)
        # Fragmentation (or slot exhaustion): the byte budget says this
        # fits, so honor the contract with a dedicated overflow segment.
        try:
            overflow = SharedSegment.create(
                size,
                max_objects=1,
                max_clients=self.max_clients,
                name_prefix=f"{self.name_prefix}o",
            )
        except OSError as exc:
            # The *host* refused (shm filesystem full, fd limit, name
            # rules): surface it as the capacity failure it is, so every
            # caller's ObjectStoreFullError fallback takes the pipe
            # instead of a raw OSError being mistaken for a pipe crash.
            raise ObjectStoreFullError(
                f"cannot create a {size}-byte overflow segment: {exc}"
            ) from exc
        self._segments.append(overflow)
        slot = overflow.allocate(size)
        return _Entry(overflow, slot, size)

    def _maybe_drop_segment(self, segment: SharedSegment) -> None:
        """Unlink an emptied overflow segment (the primary stays)."""
        if segment is self._primary or segment not in self._segments:
            return
        if segment._allocated > 0:
            return
        if any(entry.segment is segment for entry in self._zombies):
            return
        self._segments.remove(segment)
        segment.close()
        segment.unlink()

    # -- pinning (driver-side, same semantics as LocalObjectStore) ------

    def pin(self, object_id: ObjectID) -> None:
        """Protect an object from eviction (argument of a running task)."""
        self._pins[object_id] = self._pins.get(object_id, 0) + 1

    def unpin(self, object_id: ObjectID) -> None:
        count = self._pins.get(object_id, 0)
        if count <= 1:
            self._pins.pop(object_id, None)
        else:
            self._pins[object_id] = count - 1

    def is_pinned(self, object_id: ObjectID) -> bool:
        return self._pins.get(object_id, 0) > 0

    # -- teardown -------------------------------------------------------

    def clear(self) -> None:
        """Hard reset: drop every object *and* every zombie (node-death
        semantics — remote refcounts are presumed dead with the node)."""
        for client in range(self.max_clients):
            for segment in self._segments:
                segment.clear_client(client)
        for object_id in list(self._entries.keys()):
            self.delete(object_id)
        self.reap()
        self._pins.clear()
        self.used_bytes = 0

    def shutdown(self) -> None:
        """Close and unlink every segment.  Guaranteed single obligation
        of the creator: after this returns no segment name we created
        remains in the system, even if workers crashed mid-read (their
        mappings die with their processes)."""
        if self.closed:
            return
        self.closed = True
        for segment in self._segments:
            segment.close()
            segment.unlink()

    def stats(self) -> dict:
        return {
            "num_objects": self.num_objects,
            "used_bytes": self.used_bytes,
            "capacity": self.capacity,
            "evictions": self.evictions,
            "puts": self.puts,
            "hits": self.hits,
            "misses": self.misses,
            "segments": len(self._segments),
            "zombie_objects": len(self._zombies),
            "deferred_bytes": self.deferred_bytes,
        }


class ShmClient:
    """A worker process's window onto the driver's shm segments.

    Attaches segments lazily by name (one mapping per segment, cached),
    holds this client's refcount cells, and turns descriptor metadata
    into zero-copy views.  All methods are process-local; the only
    cross-process effects are refcount-cell writes, which are
    single-writer by construction (this client's column).
    """

    def __init__(self, client_index: int, untrack: bool = False) -> None:
        self.client_index = client_index
        self._untrack = untrack
        self._segments: dict[str, SharedSegment] = {}

    def _segment(self, name: str) -> SharedSegment:
        segment = self._segments.get(name)
        if segment is None:
            segment = SharedSegment.attach(name, untrack=self._untrack)
            self._segments[name] = segment
        return segment

    def hold(self, segment_name: str, slot: int) -> None:
        """Take this client's reference on a slot (before reading)."""
        self._segment(segment_name).incref(slot, self.client_index)

    def release(self, segment_name: str, slot: int) -> None:
        """Drop this client's reference (after the last use)."""
        self._segment(segment_name).decref(slot, self.client_index)

    def read(self, segment_name: str, slot: int) -> memoryview:
        """Zero-copy read-only view of a sealed slot's payload."""
        return self._segment(segment_name).slot_view(slot)

    def write_view(self, segment_name: str, slot: int) -> memoryview:
        """Writable view of an ALLOCATED (not yet sealed) slot — the
        two-phase result-write path."""
        return self._segment(segment_name).slot_view(slot, writable=True)

    def detach_all(self) -> None:
        """Close every cached mapping (worker exit)."""
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()
