"""Plasma-style shared-memory object store: the zero-copy data plane.

The paper's "missing pieces" for real-time ML include an in-memory object
store that lets processes on one node exchange large numerical data in
milliseconds through *shared memory* instead of copying bytes through
RPC.  This package is that data plane:

* :mod:`repro.shm.segment` — an arena allocator over
  ``multiprocessing.shared_memory`` segments with a create/seal/release
  object lifecycle and cross-process per-object refcounts kept in the
  segment's header region (one single-writer cell per client, so no
  cross-process write races and no locks on the read path);
* :mod:`repro.shm.store` — :class:`~repro.shm.store.SharedObjectStore`,
  the same contract as
  :class:`~repro.objectstore.store.LocalObjectStore` (capacity bound,
  LRU eviction, pinning, stats) but backed by sealed shm buffers with
  zero-copy ``memoryview`` reads, plus the worker-side
  :class:`~repro.shm.store.ShmClient` that attaches segments lazily;
* :mod:`repro.shm.coordinator` — the driver-side object directory
  (ObjectID → segment/slot/offset/size), the eviction/refcount reaper
  that reclaims space and the refcount columns of crashed workers, and
  guaranteed segment unlinking on shutdown.

The ``proc`` backend routes every large object (above its inline
threshold) through this store when shared memory is available —
see ``repro.init("proc", shm_capacity=...)`` — and transparently falls
back to the pipe path when it is not.
"""

from repro.shm.coordinator import ShmCoordinator
from repro.shm.segment import (
    SegmentError,
    SharedSegment,
    shm_available,
)
from repro.shm.store import SharedObjectStore, ShmClient

__all__ = [
    "SegmentError",
    "SharedSegment",
    "SharedObjectStore",
    "ShmClient",
    "ShmCoordinator",
    "shm_available",
]
