"""Append-only event log (requirement R7: debuggability and profiling).

Components append structured records on every state transition.  The log is
written off the critical path (the paper's prototype streams events to the
database asynchronously), so appends carry no simulated cost; the payoff is
that the profiling and timeline tools in :mod:`repro.tools` can reconstruct
exactly what the system did and when.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class EventRecord:
    """One logged state transition."""

    timestamp: float
    kind: str
    #: Free-form payload; keys are event-kind specific but stable (tested).
    payload: dict = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


class EventLog:
    """In-memory append-only log with simple filtering."""

    def __init__(self) -> None:
        self._records: list[EventRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def append(self, timestamp: float, kind: str, **payload: Any) -> None:
        """Record an event at a virtual (or wall-clock) timestamp."""
        self._records.append(EventRecord(timestamp, kind, payload))

    def filter(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[EventRecord], bool]] = None,
    ) -> list[EventRecord]:
        """Return records matching a kind and/or arbitrary predicate."""
        records = self._records
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if predicate is not None:
            records = [r for r in records if predicate(r)]
        return list(records)

    def kinds(self) -> set[str]:
        """All distinct event kinds seen so far."""
        return {r.kind for r in self._records}

    def clear(self) -> None:
        self._records.clear()
