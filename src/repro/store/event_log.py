"""Append-only event log (requirement R7: debuggability and profiling).

Components append structured records on every state transition.  The log is
written off the critical path (the paper's prototype streams events to the
database asynchronously), so appends carry no simulated cost; the payoff is
that the profiling and timeline tools in :mod:`repro.tools` can reconstruct
exactly what the system did and when.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class EventRecord:
    """One logged state transition."""

    timestamp: float
    kind: str
    #: Free-form payload; keys are event-kind specific but stable (tested).
    payload: dict = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.payload.get(key, default)


class EventLog:
    """In-memory append-only log with simple filtering.

    By default the log grows without bound — the sim's determinism
    tests depend on seeing every record.  ``max_records`` turns on ring
    mode for long-lived live runs: the log keeps only the newest
    ``max_records`` entries and counts evictions in :attr:`dropped`
    (surfaced by the tracing plane as ``stats()["obs"]["spans_dropped"]``).
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be None or >= 1, got {max_records!r}"
            )
        self.max_records = max_records
        self._records: Any = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        #: Records evicted by ring mode (always 0 in unbounded mode).
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def append(self, timestamp: float, kind: str, **payload: Any) -> None:
        """Record an event at a virtual (or wall-clock) timestamp."""
        if (
            self.max_records is not None
            and len(self._records) >= self.max_records
        ):
            self.dropped += 1  # deque maxlen evicts the oldest on append
        self._records.append(EventRecord(timestamp, kind, payload))

    def filter(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[EventRecord], bool]] = None,
    ) -> list[EventRecord]:
        """Return records matching a kind and/or arbitrary predicate."""
        records = self._records
        if kind is not None:
            records = [r for r in records if r.kind == kind]
        if predicate is not None:
            records = [r for r in records if predicate(r)]
        return list(records)

    def kinds(self) -> set[str]:
        """All distinct event kinds seen so far."""
        return {r.kind for r in self._records}

    def clear(self) -> None:
        self._records.clear()
