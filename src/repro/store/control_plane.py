"""Sharded control-plane store with pub/sub (the paper's Redis role).

All mutating/reading accessors are generator *operations*: a caller process
runs ``result = yield from cp.object_lookup(node, oid)`` and transparently
pays (1) the network hop to the head node, (2) queueing at the hash-selected
shard, (3) the per-operation service time, and (4) the hop back.
Fire-and-forget variants (``async_``) spawn the same operation as a detached
process so that hot paths (e.g. task submission) are not blocked on control
state writes — mirroring how the prototype wrote to Redis asynchronously.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.cluster.costs import SystemCosts
from repro.cluster.network import NetworkModel

# The table rows (and shard hash) are shared verbatim with the real
# backends' ControlStore (repro.gcs) — one schema, two planes.
from repro.gcs.tables import NodeInfo, ObjectEntry, TaskEntry
from repro.gcs.tables import hash_key as _hash_key
from repro.sim.core import Delay, Resource, Simulator
from repro.store.event_log import EventLog
from repro.utils.ids import FunctionID, NodeID, ObjectID, TaskID

__all__ = ["ControlPlane", "NodeInfo", "ObjectEntry", "TaskEntry"]


class ControlPlane:
    """The logically-centralized control state of Figure 3."""

    def __init__(
        self,
        sim: Simulator,
        network: NetworkModel,
        costs: SystemCosts,
        head_node: NodeID,
        num_shards: int = 4,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.sim = sim
        self.network = network
        self.costs = costs
        self.head_node = head_node
        self.num_shards = num_shards
        self.event_log = event_log if event_log is not None else EventLog()

        self._shards = [
            Resource(sim, capacity=1, name=f"gcs-shard-{i}") for i in range(num_shards)
        ]
        self._objects: dict[ObjectID, ObjectEntry] = {}
        self._tasks: dict[TaskID, TaskEntry] = {}
        self._functions: dict[FunctionID, dict] = {}
        self._nodes: dict[NodeID, NodeInfo] = {}
        self._channels: dict[str, list] = {}
        #: (node_id, callback) pairs per object awaiting readiness.
        self._ready_subs: dict[ObjectID, list] = {}
        self._heartbeat_listeners: list = []

        #: Operation counters for the throughput experiments (E6).
        self.ops_total = 0
        self.ops_per_shard = [0] * num_shards
        #: Contention instrumentation (the uniform stats()["control"] keys
        #: every backend reports; see repro.gcs.store.ControlStore.stats).
        self._shard_waiting = [0] * num_shards
        self.max_shard_queue = 0
        self.contended_ops = 0
        self._async_inflight = 0
        self.async_backlog_max = 0

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------

    def _shard_for(self, key: Any) -> int:
        return _hash_key(key) % self.num_shards

    def _op(self, from_node: NodeID, key: Any, apply_fn: Callable[[], Any]) -> Generator:
        """One control-plane RPC: hop in, queue, service, apply, hop back."""
        yield Delay(self.network.latency(from_node, self.head_node))
        shard_index = self._shard_for(key)
        shard = self._shards[shard_index]
        if shard.in_use >= shard.capacity:
            self.contended_ops += 1
        self._shard_waiting[shard_index] += 1
        if self._shard_waiting[shard_index] > self.max_shard_queue:
            self.max_shard_queue = self._shard_waiting[shard_index]
        yield shard.request()
        self._shard_waiting[shard_index] -= 1
        try:
            yield Delay(self.costs.gcs_op_service)
            result = apply_fn()
            self.ops_total += 1
            self.ops_per_shard[shard_index] += 1
        finally:
            shard.release()
        yield Delay(self.network.latency(self.head_node, from_node))
        return result

    def _async(self, op: Generator, name: str) -> None:
        """Run an operation as a detached fire-and-forget process."""
        self.sim.spawn(self._tracked_async(op), name=name)

    def _tracked_async(self, op: Generator) -> Generator:
        self._async_inflight += 1
        if self._async_inflight > self.async_backlog_max:
            self.async_backlog_max = self._async_inflight
        try:
            yield from op
        finally:
            self._async_inflight -= 1

    def control_stats(self) -> dict:
        """The uniform ``stats()["control"]`` section (same keys as the
        real backends' :meth:`repro.gcs.store.ControlStore.stats`)."""
        return {
            "num_shards": self.num_shards,
            "ops_total": self.ops_total,
            "ops_per_shard": list(self.ops_per_shard),
            "max_shard_queue": self.max_shard_queue,
            "contended_ops": self.contended_ops,
            "event_log_len": len(self.event_log),
            "async_backlog": self._async_inflight,
            "async_backlog_max": self.async_backlog_max,
            "generation": 1,
        }

    def log(self, kind: str, **payload: Any) -> None:
        """Append to the event log at the current virtual time (R7)."""
        self.event_log.append(self.sim.now, kind, **payload)

    # ------------------------------------------------------------------
    # Object table
    # ------------------------------------------------------------------

    def _object_entry(self, object_id: ObjectID) -> ObjectEntry:
        if object_id not in self._objects:
            self._objects[object_id] = ObjectEntry(object_id=object_id)
        return self._objects[object_id]

    def object_add_location(
        self,
        from_node: NodeID,
        object_id: ObjectID,
        node_id: NodeID,
        size: int,
        producer_task: Optional[TaskID] = None,
    ) -> Generator:
        """Record that ``object_id`` now lives on ``node_id``.

        The first location makes the object *ready*, which fans out ready
        notifications to subscribers (each paying the head→subscriber hop).
        """

        def apply() -> ObjectEntry:
            entry = self._object_entry(object_id)
            newly_ready = not entry.ready
            entry.locations.add(node_id)
            entry.size = max(entry.size, size)
            if producer_task is not None:
                entry.producer_task = producer_task
            entry.ready = True
            self.log("object_ready" if newly_ready else "object_replicated",
                     object_id=object_id, node=node_id, size=size)
            if newly_ready or self._ready_subs.get(object_id):
                self._notify_ready(entry)
            return entry.snapshot()

        return self._op(from_node, object_id, apply)

    def async_object_add_location(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.object_add_location(*args, **kwargs), "obj-add-loc")

    def _notify_ready(self, entry: ObjectEntry) -> None:
        subs = self._ready_subs.pop(entry.object_id, [])
        for node_id, callback in subs:
            snapshot = entry.snapshot()
            self.sim.call_after(
                self.network.latency(self.head_node, node_id), callback, snapshot
            )

    def object_remove_location(
        self, from_node: NodeID, object_id: ObjectID, node_id: NodeID
    ) -> Generator:
        """Drop a location (eviction or node death); returns the snapshot."""

        def apply() -> ObjectEntry:
            entry = self._object_entry(object_id)
            entry.locations.discard(node_id)
            self.log("object_location_removed", object_id=object_id, node=node_id)
            return entry.snapshot()

        return self._op(from_node, object_id, apply)

    def async_object_remove_location(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.object_remove_location(*args, **kwargs), "obj-rm-loc")

    def object_lookup(self, from_node: NodeID, object_id: ObjectID) -> Generator:
        """Read an object-table row (snapshot)."""

        def apply() -> ObjectEntry:
            return self._object_entry(object_id).snapshot()

        return self._op(from_node, object_id, apply)

    def object_subscribe_ready(
        self,
        from_node: NodeID,
        object_id: ObjectID,
        callback: Callable[[ObjectEntry], None],
        register_always: bool = False,
    ) -> Generator:
        """Register a notification for the object's next location add.

        Returns the current entry snapshot (so the caller can check
        readiness atomically with registration, closing the race between
        readiness and subscription).  The callback is registered only if
        the object is not yet ready — or unconditionally with
        ``register_always=True``, which lineage reconstruction uses to
        wait for a *new* replica of an object whose ready flag is already
        set but whose locations all died.
        """

        def apply() -> ObjectEntry:
            entry = self._object_entry(object_id)
            if not entry.ready or register_always:
                self._ready_subs.setdefault(object_id, []).append((from_node, callback))
            return entry.snapshot()

        return self._op(from_node, object_id, apply)

    # ------------------------------------------------------------------
    # Task table
    # ------------------------------------------------------------------

    def task_put(self, from_node: NodeID, task_id: TaskID, spec: Any) -> Generator:
        """Insert the task spec — this row *is* the lineage for replay (R6).

        The submitting node is recorded immediately so that, should that
        node die before the task reaches a later state, the failure
        monitor's per-node scan still finds and resubmits it.
        """

        def apply() -> None:
            entry = self._tasks.get(task_id)
            if entry is None:
                self._tasks[task_id] = TaskEntry(
                    task_id=task_id, spec=spec, node=from_node
                )
            self.log("task_submitted", task_id=task_id,
                     function=getattr(spec, "function_name", "?"))

        return self._op(from_node, task_id, apply)

    def async_task_put(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.task_put(*args, **kwargs), "task-put")

    def task_set_state(
        self,
        from_node: NodeID,
        task_id: TaskID,
        state: str,
        node: Optional[NodeID] = None,
    ) -> Generator:
        """Advance a task's lifecycle state (submitted→…→finished/failed)."""

        def apply() -> None:
            entry = self._tasks.get(task_id)
            if entry is None:
                entry = TaskEntry(task_id=task_id, spec=None)
                self._tasks[task_id] = entry
            entry.state = state
            if node is not None:
                entry.node = node
            if state == "running":
                entry.attempts += 1
            entry.timestamps[state] = self.sim.now
            self.log(f"task_{state}", task_id=task_id, node=node)

        return self._op(from_node, task_id, apply)

    def async_task_set_state(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.task_set_state(*args, **kwargs), "task-state")

    def task_get(self, from_node: NodeID, task_id: TaskID) -> Generator:
        """Read a task-table row (snapshot); None if unknown."""

        def apply() -> Optional[TaskEntry]:
            entry = self._tasks.get(task_id)
            return entry.snapshot() if entry is not None else None

        return self._op(from_node, task_id, apply)

    def tasks_on_node(self, from_node: NodeID, node_id: NodeID, states: Iterable[str]) -> Generator:
        """Scan for tasks last seen on ``node_id`` in any of ``states``.

        Used by failure recovery to find work orphaned by a dead node.
        Charged as a single (head-node) operation; a production system
        would maintain a per-node index.
        """
        wanted = set(states)

        def apply() -> list:
            return [
                entry.snapshot()
                for entry in self._tasks.values()
                if entry.node == node_id and entry.state in wanted
            ]

        return self._op(from_node, f"scan:{node_id.hex}", apply)

    # ------------------------------------------------------------------
    # Function table
    # ------------------------------------------------------------------

    def function_register(
        self, from_node: NodeID, function_id: FunctionID, metadata: dict
    ) -> Generator:
        def apply() -> None:
            self._functions[function_id] = dict(metadata)
            self.log("function_registered", function_id=function_id,
                     name=metadata.get("name", "?"))

        return self._op(from_node, function_id, apply)

    def function_get(self, from_node: NodeID, function_id: FunctionID) -> Generator:
        def apply() -> Optional[dict]:
            metadata = self._functions.get(function_id)
            return dict(metadata) if metadata is not None else None

        return self._op(from_node, function_id, apply)

    # ------------------------------------------------------------------
    # Node liveness (heartbeats)
    # ------------------------------------------------------------------

    #: Head-node-local listeners invoked (via the event loop) on every
    #: heartbeat — the global schedulers use this to retry queued
    #: placements the moment a fresh load report lands, instead of
    #: polling.  Populated by ``add_heartbeat_listener``.
    def add_heartbeat_listener(self, callback: Callable[[NodeInfo], None]) -> None:
        self._heartbeat_listeners.append(callback)

    def heartbeat(self, from_node: NodeID, info: NodeInfo) -> Generator:
        """Record a local scheduler's load report (periodic or on-change)."""

        def apply() -> None:
            info.last_heartbeat = self.sim.now
            self._nodes[info.node_id] = info
            for listener in self._heartbeat_listeners:
                self.sim.call_soon(listener, info)

        return self._op(from_node, f"hb:{info.node_id.hex}", apply)

    def async_heartbeat(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.heartbeat(*args, **kwargs), "heartbeat")

    def node_infos(self, from_node: NodeID) -> Generator:
        """Read all node heartbeat rows (for global scheduling decisions)."""

        def apply() -> dict:
            return {node_id: info for node_id, info in self._nodes.items()}

        return self._op(from_node, "nodes", apply)

    def mark_node_dead(self, from_node: NodeID, node_id: NodeID) -> Generator:
        def apply() -> None:
            info = self._nodes.get(node_id)
            if info is not None:
                info.alive = False
            self.log("node_dead", node=node_id)

        return self._op(from_node, f"hb:{node_id.hex}", apply)

    # ------------------------------------------------------------------
    # Pub/sub
    # ------------------------------------------------------------------

    def subscribe(
        self, from_node: NodeID, channel: str, callback: Callable[[Any], None]
    ) -> Generator:
        """Register ``callback`` (running on ``from_node``) for a channel."""

        def apply() -> None:
            self._channels.setdefault(channel, []).append((from_node, callback))

        return self._op(from_node, f"sub:{channel}", apply)

    def publish(self, from_node: NodeID, channel: str, message: Any) -> Generator:
        """Publish to a channel; delivery pays the head→subscriber hop."""

        def apply() -> int:
            subscribers = self._channels.get(channel, [])
            for node_id, callback in subscribers:
                self.sim.call_after(
                    self.network.latency(self.head_node, node_id), callback, message
                )
            return len(subscribers)

        return self._op(from_node, f"sub:{channel}", apply)

    def async_publish(self, *args: Any, **kwargs: Any) -> None:
        self._async(self.publish(*args, **kwargs), "publish")

    # ------------------------------------------------------------------
    # Zero-cost debug accessors (tests and tools only)
    # ------------------------------------------------------------------

    def debug_object(self, object_id: ObjectID) -> Optional[ObjectEntry]:
        entry = self._objects.get(object_id)
        return entry.snapshot() if entry is not None else None

    def debug_task(self, task_id: TaskID) -> Optional[TaskEntry]:
        entry = self._tasks.get(task_id)
        return entry.snapshot() if entry is not None else None

    def debug_tasks(self) -> list:
        return [entry.snapshot() for entry in self._tasks.values()]

    def debug_nodes(self) -> dict:
        return dict(self._nodes)
