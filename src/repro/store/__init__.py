"""The logically-centralized control plane (Section 3.2.1).

A sharded in-memory store (our stand-in for the paper's Redis deployment)
holding the four kinds of control state from Figure 3 — the object table,
task table, function table, and event log — plus publish/subscribe
channels that let stateless components communicate.

Every read/write is an RPC: the caller pays a network hop to the head node,
queues at the hash-selected shard (each shard services operations one at a
time), pays the per-op service time, and pays the hop back.  Sharding is
therefore the control plane's throughput lever, exactly as in the paper
("to achieve the throughput requirement (R2), we shard the database").
"""

from repro.store.control_plane import ControlPlane, NodeInfo, ObjectEntry, TaskEntry
from repro.store.event_log import EventLog, EventRecord

__all__ = [
    "ControlPlane",
    "ObjectEntry",
    "TaskEntry",
    "NodeInfo",
    "EventLog",
    "EventRecord",
]
