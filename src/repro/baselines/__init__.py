"""Baseline execution engines the paper compares against (Sections 4.2, 5).

* :class:`SerialExecutor` — the single-threaded reference ("1x").
* :class:`BSPEngine` — a Spark-like bulk-synchronous-parallel engine:
  driver-coordinated homogeneous stages with per-task overhead and stage
  barriers, no nested or dynamic tasks.
* :mod:`repro.baselines.centralized` — factory configs for the
  CIEL/Dask-style fully-centralized-scheduler ablation, built from the
  same simulated runtime with ``scheduler_mode="centralized"``.
"""

from repro.baselines.bsp import BSPConfig, BSPEngine
from repro.baselines.centralized import (
    make_centralized_runtime,
    make_hybrid_runtime,
    make_local_only_runtime,
)
from repro.baselines.serial import SerialExecutor

__all__ = [
    "SerialExecutor",
    "BSPEngine",
    "BSPConfig",
    "make_centralized_runtime",
    "make_hybrid_runtime",
    "make_local_only_runtime",
]
