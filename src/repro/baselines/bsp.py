"""Spark-like bulk-synchronous-parallel (BSP) engine.

Models the execution structure that made the paper's Spark implementation
9x *slower* than single-threaded Python on the fine-grained RL workload
(Section 4.2):

* the driver launches every task of a stage through a serialized
  scheduling loop (``driver_overhead_per_task`` covers DAG-scheduler
  bookkeeping, closure/broadcast serialization, and the Python<->JVM
  round trip of 2017-era PySpark);
* each task additionally pays an executor-side launch cost before its
  useful work runs;
* a stage is a barrier: nothing of stage *k+1* starts until every task of
  stage *k* has finished, however skewed the durations are;
* there is no nested task creation and no ``wait`` — exactly the
  restrictions R3/R5 complain about.

Default overheads are calibrated so the paper's RL workload reproduces
its reported 9x slowdown vs. serial (see EXPERIMENTS.md, experiment E2);
they are honest for PySpark ~2.x with per-stage model broadcast, which is
what the paper's implementation did.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class BSPConfig:
    """Cluster shape and overhead model for the BSP engine."""

    total_cores: int = 64
    #: Serialized driver-side cost per task.  For the paper's PySpark
    #: implementation this covers DAG-scheduler bookkeeping, per-task
    #: closure pickling, the Python<->JVM bridge, and re-broadcasting the
    #: updated model weights every stage; 70 ms/task is calibrated so the
    #: RL workload reproduces the paper's measured 9x slowdown vs. serial
    #: (Section 4.2) and is the one Spark-side free parameter we cannot
    #: measure ourselves offline (see EXPERIMENTS.md, E2).
    driver_overhead_per_task: float = 0.070
    #: Executor-side launch cost per task, paid in parallel.
    task_launch_overhead: float = 0.060
    #: Fixed cost per stage (DAG scheduling, barrier teardown).
    stage_overhead: float = 0.030

    def __post_init__(self) -> None:
        if self.total_cores <= 0:
            raise ValueError("total_cores must be positive")
        for field_name in (
            "driver_overhead_per_task",
            "task_launch_overhead",
            "stage_overhead",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"negative {field_name}")


class BSPEngine:
    """Stage-at-a-time executor with a virtual clock."""

    def __init__(self, config: BSPConfig | None = None) -> None:
        self.config = config or BSPConfig()
        self.clock = 0.0
        self.stages_run = 0
        self.tasks_run = 0

    def run_stage(
        self,
        fn: Callable,
        items: Sequence[Any],
        duration: float | Callable[[Any], float] = 0.0,
    ) -> list:
        """Execute one BSP stage of ``fn(item)`` tasks; barrier at the end.

        ``duration`` is the modeled per-task compute time (a float, or a
        callable of the item).  Functions run for real, so downstream
        logic sees true values.
        """
        config = self.config
        results = []
        if not items:
            self.clock += config.stage_overhead
            self.stages_run += 1
            return results

        # Tasks become launchable as the driver's serialized loop emits
        # them; each runs on the earliest-free core.
        core_free = [self.clock] * min(config.total_cores, len(items))
        heapq.heapify(core_free)
        stage_end = self.clock
        submit_time = self.clock
        for item in items:
            submit_time += config.driver_overhead_per_task
            core_available = heapq.heappop(core_free)
            start = max(submit_time, core_available)
            task_duration = duration(item) if callable(duration) else float(duration)
            if task_duration < 0:
                raise ValueError(f"negative task duration {task_duration}")
            finish = start + config.task_launch_overhead + task_duration
            heapq.heappush(core_free, finish)
            stage_end = max(stage_end, finish)
            results.append(fn(item))
            self.tasks_run += 1

        self.clock = stage_end + config.stage_overhead
        self.stages_run += 1
        return results

    def run_ideal_parallel(
        self, fn: Callable, items: Sequence[Any], duration: float = 0.0
    ) -> list:
        """Charge only the perfectly-parallelized compute time.

        Mirrors the paper's footnote 2: "the GPU model fitting could not
        be naturally parallelized on Spark, so the numbers are reported as
        if it had been perfectly parallelized with no overhead in Spark" —
        i.e. this method is deliberately *generous* to the BSP baseline.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        results = [fn(item) for item in items]
        if items:
            waves = -(-len(items) // self.config.total_cores)  # ceil division
            self.clock += waves * duration
        self.tasks_run += len(items)
        return results

    def elapsed(self) -> float:
        return self.clock
