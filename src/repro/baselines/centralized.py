"""Scheduler-architecture ablation configs (experiment E9).

The paper argues (Sections 3.2.2 and 5) that dynamic-dataflow systems with
*entirely centralized* scheduling (CIEL, Dask) must trade latency against
throughput, while its hybrid local/global design achieves both.  These
factories build the same simulated runtime in the three architectures so
benchmarks compare them like-for-like:

* **hybrid** — the paper's design: local schedulers keep work when they
  can, spill the rest to the global scheduler.
* **centralized** — every task, from every worker, goes through the global
  scheduler (and a single-shard control store by default, like a single
  Dask scheduler process).
* **local_only** — no load sharing at all; nodes keep everything they can
  physically run (the opposite extreme).
"""

from __future__ import annotations

from typing import Any

from repro.cluster.spec import ClusterSpec
from repro.core.runtime import SimRuntime


def make_hybrid_runtime(cluster: ClusterSpec, **kwargs: Any) -> SimRuntime:
    """The paper's architecture (hybrid scheduling, sharded store)."""
    kwargs.setdefault("num_gcs_shards", 8)
    return SimRuntime(cluster=cluster, scheduler_mode="hybrid", **kwargs)


def make_centralized_runtime(cluster: ClusterSpec, **kwargs: Any) -> SimRuntime:
    """CIEL/Dask-style: all scheduling through one central component."""
    kwargs.setdefault("num_gcs_shards", 1)
    kwargs.setdefault("num_global_schedulers", 1)
    return SimRuntime(cluster=cluster, scheduler_mode="centralized", **kwargs)


def make_local_only_runtime(cluster: ClusterSpec, **kwargs: Any) -> SimRuntime:
    """No spillover: every node keeps all work it can physically run."""
    kwargs.setdefault("num_gcs_shards", 8)
    return SimRuntime(cluster=cluster, scheduler_mode="local_only", **kwargs)
