"""Single-threaded baseline executor.

The paper's Section 4.2 uses the single-threaded implementation as the
reference point ("9x slower than the single-threaded implementation",
"7x faster than the single-threaded version").  The executor really runs
the Python functions (so results are identical to the distributed runs)
while accumulating *modeled* compute time on a virtual clock, making its
times directly comparable with the simulated cluster's virtual time.
"""

from __future__ import annotations

from typing import Any, Callable


class SerialExecutor:
    """Runs tasks inline, one after another, with zero system overhead."""

    def __init__(self) -> None:
        self.clock = 0.0
        self.tasks_executed = 0

    def run(self, fn: Callable, *args: Any, duration: float = 0.0, **kwargs: Any) -> Any:
        """Execute ``fn`` now; advance the clock by its modeled duration."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        self.clock += duration
        self.tasks_executed += 1
        return fn(*args, **kwargs)

    def run_batch(self, fn: Callable, items, duration: float = 0.0) -> list:
        """Execute ``fn(item)`` for every item, serially."""
        return [self.run(fn, item, duration=duration) for item in items]

    def elapsed(self) -> float:
        return self.clock
