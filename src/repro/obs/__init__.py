"""Live tracing plane: wall-clock spans from every process, one timeline.

The paper's centralized control plane exists so that "it is easy to
write tools to profile and debug the system" (Figure 3, R7).  The sim
gets this for free — every modeled component writes the driver's
:class:`~repro.store.event_log.EventLog` in virtual time.  This module
makes the *live* backends equally inspectable:

* Each process that does work — the driver, every proc worker, every
  dist node agent — owns a :class:`SpanRecorder`: an in-memory,
  bounded, lock-guarded buffer of ``(monotonic_time, kind, payload)``
  tuples.  Recording is append-to-a-list off the hot path; nothing is
  serialized or sent at record time.
* Buffers flush *out-of-band*: workers piggyback their drained buffer
  on messages they already send (the trailing element of ``DONE`` /
  ``RESULT`` / ``IDLE``, flushed alongside the batched submit notices),
  agents piggyback on their heartbeat cadence, and an overflowing
  buffer rides a dedicated one-way ``SPANS`` frame.  A disabled
  recorder costs one attribute check per call site.
* The driver-side :class:`SpanCollector` merges every stream onto one
  coherent wall-clock timeline.  Each flush carries the sender's
  ``time.monotonic()`` at send; the collector keeps, per source, the
  *minimum* observed ``recv - send`` delta as that process's clock
  offset (the error is bounded by the minimum transport delay, which
  is nonnegative — so causal order across processes is preserved:
  a mapped remote event never lands before the driver event that
  caused it).  Mapped records feed a plain ``EventLog``, so the
  existing R7 tools — ``task_spans``, ``export_chrome_trace``,
  ``TaskProfiler``, ``utilization``, ``run_report`` — work unchanged
  on live runs.

Span *kinds* deliberately reuse the sim's vocabulary
(``task_submitted`` / ``task_started`` / ``task_finished`` /
``lineage_replay`` / ``failure_detected`` ...), so one assertion suite
can hold all four backends to the same trace shape.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.store.event_log import EventLog

#: Per-process recorder buffer bound (spans).  Flushes happen far more
#: often than this fills (every DONE/RESULT/IDLE/heartbeat), so at the
#: default size ``spans_dropped`` stays 0; the bound is the backstop
#: that keeps a wedged process from growing without limit.
DEFAULT_BUFFER_SPANS = 65536

#: A worker whose buffer reaches this many spans mid-session flushes a
#: standalone ``SPANS`` frame at its next RPC instead of waiting for
#: the session-closing message.
FLUSH_THRESHOLD = 64

#: Driver-side collected-timeline bound.  Long serving runs cap here
#: (ring mode) instead of leaking; the ``dropped`` count surfaces in
#: ``stats()["obs"]["spans_dropped"]``.
DEFAULT_COLLECTOR_RECORDS = 1_000_000


class SpanRecorder:
    """One process's span buffer: record cheaply now, flush in batches.

    ``record`` stamps :func:`time.monotonic` (the *local* clock — the
    collector maps it onto the driver timeline at ingest) and appends
    under a lock.  ``drain`` swaps the buffer out and returns an *obs
    blob* — ``(send_monotonic, records, dropped_total)`` — ready to ride
    any transport, or ``None`` when there is nothing to say (so call
    sites can skip appending a trailing element entirely).
    """

    __slots__ = (
        "enabled", "capacity", "recorded", "dropped", "flushes",
        "_buffer", "_lock",
    )

    def __init__(
        self, enabled: bool = True, capacity: int = DEFAULT_BUFFER_SPANS
    ) -> None:
        self.enabled = bool(enabled)
        self.capacity = int(capacity)
        self.recorded = 0
        self.dropped = 0
        self.flushes = 0
        self._buffer: list = []
        self._lock = threading.Lock()

    def record(
        self, kind: str, timestamp: Optional[float] = None, **payload: Any
    ) -> None:
        if not self.enabled:
            return
        t = time.monotonic() if timestamp is None else timestamp
        with self._lock:
            if len(self._buffer) >= self.capacity:
                self.dropped += 1
                return
            self._buffer.append((t, kind, payload))
            self.recorded += 1

    def __len__(self) -> int:
        return len(self._buffer)

    def should_flush(self) -> bool:
        """The buffer is large enough to justify a dedicated frame."""
        return self.enabled and len(self._buffer) >= FLUSH_THRESHOLD

    def drain(self) -> Optional[tuple]:
        """Swap out the buffer; returns an obs blob or None when empty.

        The blob's ``dropped_total`` is cumulative — the collector keeps
        the max per source, so drops are never double counted and a drop
        that happened between flushes is reported by the next one.
        """
        if not self.enabled:
            return None
        with self._lock:
            if not self._buffer and not self.dropped:
                return None
            records, self._buffer = self._buffer, []
            self.flushes += 1
            return (time.monotonic(), records, self.dropped)


class SpanCollector:
    """Driver-side merge point: every process's spans, one timeline.

    Owns the session :class:`EventLog` (timestamps are seconds since
    collector creation, i.e. since ``init``) and the per-source clock
    calibration.  ``record`` is for driver-local events; ``ingest``
    maps a remote obs blob through the source's offset estimate.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_records: Optional[int] = DEFAULT_COLLECTOR_RECORDS,
    ) -> None:
        self.enabled = bool(enabled)
        self._t0 = time.monotonic()
        self._lock = threading.Lock()
        self.event_log: Optional[EventLog] = (
            EventLog(max_records=max_records) if self.enabled else None
        )
        #: source -> running min of (driver recv mono - sender send mono):
        #: the sender's clock offset onto the driver clock, biased by at
        #: most the minimum transport delay (>= 0, so causality holds).
        self._offsets: dict[Any, float] = {}
        #: source -> (min_sample, max_sample); the spread bounds how far
        #: the offset estimate can be off, surfaced as clock_skew_est.
        self._samples: dict[Any, tuple] = {}
        #: source -> cumulative drop count reported by that recorder.
        self._remote_dropped: dict[Any, int] = {}
        self.spans_recorded = 0
        self.flushes = 0

    def record(self, kind: str, **payload: Any) -> None:
        """One driver-local span event, stamped now."""
        if not self.enabled:
            return
        t = time.monotonic() - self._t0
        with self._lock:
            self.event_log.append(t, kind, **payload)
            self.spans_recorded += 1

    def ingest(
        self, source: Any, blob: Optional[tuple], extra: Optional[dict] = None
    ) -> None:
        """Map one remote obs blob onto the driver timeline.

        ``extra`` supplies identity keys (worker/node names) the remote
        recorder did not know; they fill payload keys not already set.
        """
        if not self.enabled or blob is None:
            return
        send_mono, records, dropped_total = blob
        recv = time.monotonic()
        with self._lock:
            sample = recv - send_mono
            offset = self._offsets.get(source)
            if offset is None or sample < offset:
                self._offsets[source] = offset = sample
            lo, hi = self._samples.get(source, (sample, sample))
            self._samples[source] = (min(lo, sample), max(hi, sample))
            self.flushes += 1
            if dropped_total:
                previous = self._remote_dropped.get(source, 0)
                self._remote_dropped[source] = max(previous, dropped_total)
            for t_mono, kind, payload in records:
                if extra:
                    for key, value in extra.items():
                        payload.setdefault(key, value)
                self.event_log.append(
                    t_mono + offset - self._t0, kind, **payload
                )
                self.spans_recorded += 1

    @property
    def clock_skew_est(self) -> float:
        """Worst per-source spread of offset samples (seconds): an upper
        bound on how far any source's mapped timestamps may sit from
        their true driver-clock positions.  0.0 with no remote sources."""
        with self._lock:
            if not self._samples:
                return 0.0
            return max(hi - lo for lo, hi in self._samples.values())

    @property
    def spans_dropped(self) -> int:
        with self._lock:
            dropped = sum(self._remote_dropped.values())
        if self.event_log is not None:
            dropped += self.event_log.dropped
        return dropped

    def stats(self) -> dict:
        """The uniform ``stats()["obs"]`` section."""
        if not self.enabled:
            return {
                "enabled": False,
                "spans_recorded": 0,
                "spans_dropped": 0,
                "flushes": 0,
                "clock_skew_est": 0.0,
            }
        return {
            "enabled": True,
            "spans_recorded": self.spans_recorded,
            "spans_dropped": self.spans_dropped,
            "flushes": self.flushes,
            "clock_skew_est": self.clock_skew_est,
        }


def disabled_obs_stats() -> dict:
    """The ``stats()["obs"]`` shape for a runtime without a collector."""
    return SpanCollector(enabled=False).stats()


def resolve_event_log(runtime) -> Optional[EventLog]:
    """The runtime's live event log, or None when it has none.

    Works on every backend: the sim's always-on log, a live backend's
    collected trace (``tracing=True``), or None — callers degrade
    gracefully instead of raising ``AttributeError``.
    """
    log = getattr(runtime, "event_log", None)
    return log if isinstance(log, EventLog) else None
