"""Per-node in-memory object stores and inter-node object transfer.

Each simulated node runs one object store (the shared-memory store in
Figure 3): workers on the node put results in and read arguments out at
IPC cost, while arguments produced on other nodes are pulled over the
network by the transfer manager at latency + size/bandwidth cost.  The
store enforces a byte capacity with LRU eviction of unpinned objects and
keeps the control plane's object table in sync with every location change.
"""

from repro.objectstore.store import LocalObjectStore, ObjectStoreFullError
from repro.objectstore.transfer import TransferManager

__all__ = ["LocalObjectStore", "ObjectStoreFullError", "TransferManager"]
