"""Inter-node object transfer.

When a task is placed on a node that lacks one of its argument objects,
the transfer manager pulls the bytes from a node that has them, paying the
network model's latency + size/bandwidth time, then registers the new
location with the object table.  Concurrent requests for the same object
are deduplicated onto a single in-flight transfer.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.cluster.network import NetworkModel
from repro.errors import ObjectLostError
from repro.objectstore.store import LocalObjectStore
from repro.sim.core import Delay, Simulator
from repro.store.control_plane import ControlPlane
from repro.utils.ids import NodeID, ObjectID


class TransferManager:
    """Pulls remote objects into this node's local store."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeID,
        store: LocalObjectStore,
        control_plane: ControlPlane,
        network: NetworkModel,
        node_alive: Optional[Callable[[NodeID], bool]] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.store = store
        self.control_plane = control_plane
        self.network = network
        #: Liveness oracle, wired by the runtime so transfers from nodes
        #: that died mid-flight retry against surviving replicas.
        self.node_alive = node_alive or (lambda _node: True)
        self._inflight: dict[ObjectID, object] = {}
        self.transfers_completed = 0
        self.bytes_transferred = 0
        #: Wired by the runtime: NodeID -> LocalObjectStore of that node.
        #: (Simulation shortcut — real systems move bytes over sockets; we
        #: model the time with ``transfer_time`` and copy directly.)
        self.peer_stores: dict[NodeID, LocalObjectStore] = {}

    def ensure_local(self, object_id: ObjectID, max_retries: int = 3) -> Generator:
        """Process: make ``object_id`` resident locally; returns its bytes.

        Raises
        ------
        ObjectLostError
            If the object table lists no live location (the caller — a
            worker or the driver — may then trigger lineage reconstruction).
        """
        data = self.store.get(object_id)
        if data is not None:
            return data

        # Deduplicate concurrent fetches of the same object.
        pending = self._inflight.get(object_id)
        if pending is not None:
            yield pending
            data = self.store.get(object_id)
            if data is not None:
                return data
            # The transfer we piggybacked on failed; fall through and retry.

        done = self.sim.signal(name=f"xfer:{object_id.hex[:8]}")
        self._inflight[object_id] = done
        try:
            data = yield from self._fetch(object_id, max_retries)
            return data
        finally:
            self._inflight.pop(object_id, None)
            if not done.fired:
                done.fire(None)

    def _fetch(self, object_id: ObjectID, max_retries: int) -> Generator:
        last_error = "no locations"
        for _attempt in range(max_retries):
            entry = yield from self.control_plane.object_lookup(self.node_id, object_id)
            live = [n for n in entry.locations if self.node_alive(n)]
            if self.node_id in live:
                # Raced with another writer; already here.
                data = self.store.get(object_id)
                if data is not None:
                    return data
                live.remove(self.node_id)
            if not live:
                if not entry.ready:
                    last_error = "object not yet produced"
                break
            # Deterministic source choice: lowest node hex (stable ordering).
            source = min(live, key=lambda n: n.hex)
            yield Delay(self.network.transfer_time(source, self.node_id, entry.size))
            if not self.node_alive(source):
                last_error = f"source {source} died mid-transfer"
                continue
            data = self._materialize(object_id, entry.size, source)
            if data is not None:
                return data
            last_error = "source dropped object during transfer"
        raise ObjectLostError(
            f"object {object_id} unavailable on any live node ({last_error})"
        )

    def _materialize(self, object_id: ObjectID, size: int, source: NodeID) -> Optional[bytes]:
        """Copy bytes from the source store into ours and record location."""
        source_store = self._peer_store(source)
        data = source_store.get(object_id) if source_store is not None else None
        if data is None:
            return None
        self.store.put(object_id, data)
        self.transfers_completed += 1
        self.bytes_transferred += size
        self.control_plane.async_object_add_location(
            self.node_id, object_id, self.node_id, size
        )
        self.control_plane.log(
            "object_transferred", object_id=object_id,
            source=source, dest=self.node_id, size=size,
        )
        return data

    def _peer_store(self, node_id: NodeID) -> Optional[LocalObjectStore]:
        return self.peer_stores.get(node_id)
