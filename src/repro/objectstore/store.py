"""The per-node shared-memory object store."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ReproError
from repro.store.control_plane import ControlPlane
from repro.utils.ids import NodeID, ObjectID


class ObjectStoreFullError(ReproError):
    """Capacity exceeded and every resident object is pinned."""


class LocalObjectStore:
    """Byte-capacity-bounded store of serialized objects with LRU eviction.

    Objects an executing task depends on are *pinned* for the duration of
    the task so eviction can never pull an argument out from under a
    running computation.  Evictions notify the control plane's object
    table asynchronously (off the critical path), exactly like location
    drops in the paper's prototype.
    """

    def __init__(
        self,
        node_id: NodeID,
        capacity: int,
        control_plane: Optional[ControlPlane] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.node_id = node_id
        self.capacity = capacity
        self.control_plane = control_plane
        self._data: "OrderedDict[ObjectID, bytes]" = OrderedDict()
        self._pins: dict[ObjectID, int] = {}
        self.used_bytes = 0
        self.evictions = 0
        self.puts = 0
        self.hits = 0
        self.misses = 0

    # -- basic access -------------------------------------------------------

    def contains(self, object_id: ObjectID) -> bool:
        return object_id in self._data

    def size_of(self, object_id: ObjectID) -> Optional[int]:
        data = self._data.get(object_id)
        return len(data) if data is not None else None

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def num_objects(self) -> int:
        return len(self._data)

    def object_ids(self) -> tuple:
        """Resident object ids in LRU order, oldest first (introspection
        for invariant checks; does not touch recency)."""
        return tuple(self._data.keys())

    def put(self, object_id: ObjectID, data: bytes) -> None:
        """Insert serialized bytes, evicting LRU unpinned objects as needed.

        Raises
        ------
        ObjectStoreFullError
            If the object cannot fit even after evicting everything
            evictable (or is larger than the store's total capacity).
        """
        if object_id in self._data:
            # Idempotent re-put (e.g. a transfer raced a reconstruction).
            self._data.move_to_end(object_id)
            return
        if len(data) > self.capacity:
            raise ObjectStoreFullError(
                f"object of {len(data)} bytes exceeds store capacity {self.capacity}"
            )
        self._evict_until(len(data))
        self._data[object_id] = data
        self.used_bytes += len(data)
        self.puts += 1

    def get(self, object_id: ObjectID) -> Optional[bytes]:
        """Return serialized bytes if resident (touches LRU order)."""
        data = self._data.get(object_id)
        if data is None:
            self.misses += 1
            return None
        self._data.move_to_end(object_id)
        self.hits += 1
        return data

    def delete(self, object_id: ObjectID) -> bool:
        """Explicitly remove an object (no control-plane notification)."""
        data = self._data.pop(object_id, None)
        if data is None:
            return False
        self.used_bytes -= len(data)
        self._pins.pop(object_id, None)
        return True

    # -- pinning -------------------------------------------------------------

    def pin(self, object_id: ObjectID) -> None:
        """Protect an object from eviction (argument of a running task)."""
        self._pins[object_id] = self._pins.get(object_id, 0) + 1

    def unpin(self, object_id: ObjectID) -> None:
        count = self._pins.get(object_id, 0)
        if count <= 1:
            self._pins.pop(object_id, None)
        else:
            self._pins[object_id] = count - 1

    def is_pinned(self, object_id: ObjectID) -> bool:
        return self._pins.get(object_id, 0) > 0

    # -- eviction -------------------------------------------------------------

    def _evict_until(self, needed: int) -> None:
        """Evict LRU unpinned objects until ``needed`` bytes fit."""
        if needed <= self.free_bytes:
            return
        for object_id in list(self._data.keys()):
            if self.free_bytes >= needed:
                return
            if self.is_pinned(object_id):
                continue
            data = self._data.pop(object_id)
            self.used_bytes -= len(data)
            self.evictions += 1
            if self.control_plane is not None:
                self.control_plane.async_object_remove_location(
                    self.node_id, object_id, self.node_id
                )
                self.control_plane.log(
                    "object_evicted", object_id=object_id, node=self.node_id,
                    size=len(data),
                )
        if self.free_bytes < needed:
            raise ObjectStoreFullError(
                f"need {needed} bytes but only {self.free_bytes} evictable on "
                f"{self.node_id} (pinned objects: {len(self._pins)})"
            )

    def clear(self) -> None:
        """Drop everything (node death). No control-plane notifications —
        the failure handler removes locations in bulk."""
        self._data.clear()
        self._pins.clear()
        self.used_bytes = 0
